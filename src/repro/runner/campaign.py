"""Streaming campaign store + batched campaign execution (schema v2).

A *campaign* is one declarative :class:`~repro.runner.scenario.ScenarioGrid`
executed to completion, however many sessions that takes.  The v1
:class:`~repro.runner.store.ResultStore` keeps one content-addressed
JSON file per scenario — perfect for ad-hoc caching, hopeless for
million-point grids (a million files, a content hash per point).  The
campaign store exploits that a grid point is fully identified by
``(grid content hash, row-major index)``:

* ``campaign.json`` — the header: schema version, the full declarative
  grid (so the campaign is self-describing and re-openable anywhere),
  its content hash, and provenance (producing backend + schema
  versions, so model output can never masquerade as measurements);
* ``segments/seg-NNNNNN.jsonl`` — append-only JSON-lines segments, one
  per completed chunk; line 1 is a tagged header, each following row is
  ``[index, ...]`` in a per-segment *encoding* (compact ``bench-mean``
  / ``pattern-mean`` rows for the deterministic analytic backend, full
  ``result`` rows otherwise);
* ``segments/seg-NNNNNN.bin`` — the binary-columnar form of an
  analytic chunk (campaign ``compression: "binary"``): the same tagged
  JSON header line followed by raw little-endian column blocks
  (``float64``/``int64``, ``numpy.ndarray.tobytes()`` straight from
  the kernel's output arrays — zero per-point formatting), mmap-read
  and size-validated; binary, plain, and gzip segments mix freely in
  one store;
* ``index.json`` — covered index ranges per segment.  It is a pure
  accelerator: if it is missing or stale it is rebuilt by scanning the
  segment headers, so resume works from the segments alone;
* ``loose/loose-NNNNNN.jsonl`` — hash-addressed rows migrated from a
  v1 store (:meth:`CampaignStore.migrate_from_v1`); they also serve as
  a read-through cache for simulation-backed campaign chunks.

:func:`run_campaign` executes the missing ranges chunk-by-chunk: the
analytic fast paths (bench *and* pattern) decode grid indices straight
into parameter columns for the vectorized model kernel (no spec
objects, no content hashes — microseconds per point end-to-end), and
hand the kernel's output arrays to a bounded-queue **async segment
writer** (:class:`~repro.runner.executor.AsyncSegmentWriter`) so
encode+write overlap the next chunk's compute; simulation chunks flow
through a bounded submit-ahead pipeline
(:func:`~repro.runner.executor.iter_chunk_results`): the next chunks
are already executing on a persistent worker pool while earlier
results stream to the store in submission order.  Each completed chunk
is appended before the next result is consumed, so an interrupted
campaign resumes from its segments; segments may be gzip-compressed
(``compression`` header field; ``compact(compress=True)`` migrates in
place) or binary-columnar (``compact(binary=True)``), and all three
on-disk forms read interchangeably.

Reads are a **streaming k-way merge**: every segment yields its rows
in ascending index order, a heap merges them with a latest-append-wins
tiebreak (higher segment sequence pops first per index), and segments
are opened lazily when the merge cursor reaches their first covered
index — so :meth:`CampaignStore.iter_rows` and
:meth:`CampaignStore.compact` hold O(one segment) in memory instead of
materializing a per-point dict for the whole campaign.

All-analytic stores additionally get a **columnar bulk-read** path
(:meth:`CampaignStore.iter_columns` / :meth:`CampaignStore.read_columns`):
the same latest-wins merge decided at the *index-range* level from the
index metadata alone, surviving pieces sliced straight off memmapped
column blocks, ndarrays end-to-end.  It is the substrate for
:meth:`CampaignStore.query`'s vectorized path, ``export --format npz``,
binary→binary :meth:`CampaignStore.compact`, and
``campaign report --slice`` (:func:`slice_report`).
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import telemetry
from ..telemetry import span
from .io import (
    atomic_write_bytes,
    atomic_write_text,
    open_segment_text,
    read_binary_segment,
    read_columnar_text_segment,
    read_segment_header,
    write_jsonl,
    write_npz,
)
from .scenario import (
    GRID_SCHEMA,
    KIND_BENCH,
    KIND_PATTERN,
    Scenario,
    ScenarioGrid,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "DEFAULT_READ_CHUNK",
    "SEGMENT_SCHEMA",
    "CampaignStore",
    "parse_grid_spec",
    "run_campaign",
    "slice_report",
]

CAMPAIGN_SCHEMA = "repro.campaign/v2"
SEGMENT_SCHEMA = "repro.campaign.segment/v2"
INDEX_SCHEMA = "repro.campaign.index/v2"

#: Row encodings.  The ``*-mean`` encodings exploit that the analytic
#: model is deterministic (every iteration sample identical): a row is
#: ``[index, time]`` (+ ``bytes_per_iteration, n_links`` for patterns)
#: and the full result dict is reconstructed on read.  The ``*-cols``
#: encodings are the hot write path: one contiguous chunk stored as
#: whole-column JSON arrays (indices implicit from the header range),
#: serialized by one C-level ``json.dumps`` per column instead of one
#: Python format call per point.
ENC_RESULT = "result"
ENC_BENCH_MEAN = "bench-mean"
ENC_PATTERN_MEAN = "pattern-mean"
ENC_BENCH_COLS = "bench-cols"
ENC_PATTERN_COLS = "pattern-cols"
ENC_BENCH_BIN = "bench-bin"
ENC_PATTERN_BIN = "pattern-bin"
ENC_HASHED = "hashed-result"

#: Column layout of the binary encodings: ``(name, dtype)`` blocks in
#: on-disk order, dtypes explicitly little-endian.  The header also
#: carries this list (``"columns"``), so a binary segment stays
#: self-describing.
_BIN_COLUMNS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    ENC_BENCH_BIN: (("times", "<f8"),),
    ENC_PATTERN_BIN: (
        ("times", "<f8"),
        ("bytes_per_iteration", "<i8"),
        ("n_links", "<i8"),
    ),
}

#: Columnar-JSONL encoding -> its binary twin (the append fast path
#: under a ``compression: "binary"`` campaign).
_BIN_FOR_COLS = {
    ENC_BENCH_COLS: ENC_BENCH_BIN,
    ENC_PATTERN_COLS: ENC_PATTERN_BIN,
}

#: Mean-row encoding -> binary twin (the ``compact --binary`` path).
_BIN_FOR_MEAN = {
    ENC_BENCH_MEAN: ENC_BENCH_BIN,
    ENC_PATTERN_MEAN: ENC_PATTERN_BIN,
}

#: Binary encoding -> the row dialect its unfolded rows speak (shared
#: with the ``*-cols`` unfold, so every downstream consumer sees one
#: row form per kind).
_ROW_ENC_FOR_BIN = {
    ENC_BENCH_BIN: ENC_BENCH_MEAN,
    ENC_PATTERN_BIN: ENC_PATTERN_MEAN,
}

#: Scenario kind -> its binary encoding (and therefore its column
#: layout, via :data:`_BIN_COLUMNS`) — the one columnar schema every
#: analytic segment of that kind maps onto.
_KIND_BIN = {
    KIND_BENCH: ENC_BENCH_BIN,
    KIND_PATTERN: ENC_PATTERN_BIN,
}

#: Encodings with a columnar form: everything the analytic pipeline
#: writes (``*-bin``, ``*-cols``, ``*-mean``).  A store whose segments
#: all speak one of these supports the zero-materialization columnar
#: read path (:meth:`CampaignStore.iter_columns`); full-``result`` and
#: hashed rows do not (their payload is an arbitrary dict per point).
_COLUMNAR_ENCODINGS = (
    set(_BIN_COLUMNS) | set(_BIN_FOR_COLS) | set(_BIN_FOR_MEAN)
)

#: Points per :meth:`CampaignStore.iter_columns` chunk when the caller
#: does not pin one.  Large enough that per-chunk overhead (concat,
#: telemetry) amortizes to nothing; small enough that a chunk of all
#: columns stays a few MB.
DEFAULT_READ_CHUNK = 65536

#: Points per inline (analytic) campaign chunk when the caller does
#: not pin one; simulation chunks are sized by the planner's
#: :func:`~repro.runner.planner.auto_chunk_size` instead (a few chunks
#: per worker, capped at 32).
DEFAULT_INLINE_CHUNK = 16384

#: Target points per segment after compaction.
COMPACT_SEGMENT_POINTS = 8192

#: Segment storage modes (the campaign-header ``compression`` field
#: selects the default for *new* segments; readers dispatch per file,
#: so mixed stores are fine).  ``"binary"`` stores analytic columnar
#: chunks as raw little-endian column blocks (``.bin``); row-encoded
#: segments (simulation results, v1 rows) stay plain JSONL under it.
COMPRESSION_NONE = "none"
COMPRESSION_GZIP = "gzip"
COMPRESSION_BINARY = "binary"
COMPRESSIONS = (COMPRESSION_NONE, COMPRESSION_GZIP, COMPRESSION_BINARY)

#: Every on-disk segment suffix one seq number may occupy.
_SEGMENT_SUFFIXES = (".jsonl", ".jsonl.gz", ".bin")

#: Writer tokens become path components of segment names, so the
#: charset is deliberately tight (no separators, no dots).
_WRITER_TOKEN_RE = re.compile(r"[A-Za-z0-9_]{1,32}")


# ---------------------------------------------------------------------------
# grid specs
# ---------------------------------------------------------------------------

def _expand_axis(name: str, values: Any) -> List[Any]:
    """Expand one axis spec: a plain list, or a shorthand dict —
    ``{"pow2": [lo, hi]}`` (powers of two 2**lo..2**hi inclusive),
    ``{"range": [start, stop[, step]]}`` (Python range semantics), or
    ``{"values": [...]}`` (explicit, same as a bare list)."""
    if isinstance(values, Mapping):
        if "pow2" in values:
            lo, hi = values["pow2"]
            return [1 << e for e in range(int(lo), int(hi) + 1)]
        if "range" in values:
            return list(range(*[int(v) for v in values["range"]]))
        if "values" in values:
            return list(values["values"])
        raise ValueError(
            f"axis {name!r}: unknown shorthand {sorted(values)!r} "
            f"(expected pow2 / range / values)"
        )
    return list(values)


def parse_grid_spec(payload: Mapping[str, Any]) -> ScenarioGrid:
    """Build a :class:`ScenarioGrid` from a JSON grid spec.

    The spec is the :meth:`ScenarioGrid.to_dict` form plus axis
    shorthands (see :func:`_expand_axis`)::

        {"kind": "bench", "backend": "analytic",
         "base": {"n_threads": 4, "theta": 4, "iterations": 3},
         "axes": {"approach": ["pt2pt_part", "pt2pt_single"],
                  "total_bytes": {"pow2": [10, 24]}}}
    """
    expanded = dict(payload)
    expanded["axes"] = {
        name: _expand_axis(name, values)
        for name, values in payload.get("axes", {}).items()
    }
    return ScenarioGrid.from_dict(expanded)


# ---------------------------------------------------------------------------
# interval bookkeeping
# ---------------------------------------------------------------------------

def _merge_ranges(ranges: Sequence[Sequence[int]]) -> List[Tuple[int, int]]:
    """Union of half-open [start, stop) ranges, merged and sorted."""
    merged: List[Tuple[int, int]] = []
    for start, stop in sorted((int(s), int(e)) for s, e in ranges):
        if stop <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return merged


def _indices_to_ranges(indices: Sequence[int]) -> List[Tuple[int, int]]:
    """Sorted unique indices -> contiguous [start, stop) runs."""
    runs: List[Tuple[int, int]] = []
    for i in indices:
        if runs and i == runs[-1][1]:
            runs[-1] = (runs[-1][0], i + 1)
        else:
            runs.append((i, i + 1))
    return runs


def _subtract_ranges(
    start: int, stop: int, covered: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Parts of [start, stop) not covered by the merged, sorted
    ``covered`` ranges — the survivor arithmetic of the range-level
    latest-wins merge."""
    out: List[Tuple[int, int]] = []
    cursor = start
    for c_start, c_stop in covered:
        if c_stop <= cursor:
            continue
        if c_start >= stop:
            break
        if c_start > cursor:
            out.append((cursor, min(c_start, stop)))
        cursor = max(cursor, c_stop)
        if cursor >= stop:
            break
    if cursor < stop:
        out.append((cursor, stop))
    return out


def _intersect_ranges(
    a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Intersection of two merged, sorted [start, stop) range lists —
    the shard-scoping primitive: a shard's assigned slabs intersected
    with the store's missing ranges yields exactly the work this shard
    still owes."""
    out: List[Tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        stop = min(a[i][1], b[j][1])
        if start < stop:
            out.append((start, stop))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _ranges_to_index_array(ranges: Sequence[Sequence[int]]):
    """Sorted [start, stop) ranges -> one ascending int64 index array."""
    import numpy as np

    if not ranges:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.arange(int(s), int(e), dtype=np.int64) for s, e in ranges]
    )


def _index_array_to_ranges(indices) -> List[Tuple[int, int]]:
    """Ascending int64 index array -> contiguous [start, stop) runs
    (the vectorized :func:`_indices_to_ranges`: one ``diff`` over the
    array instead of a Python loop per point)."""
    import numpy as np

    if not len(indices):
        return []
    breaks = np.flatnonzero(np.diff(indices) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [len(indices) - 1]))
    return [
        (int(indices[a]), int(indices[b]) + 1)
        for a, b in zip(starts, stops)
    ]


def _row_index(line: str) -> int:
    """The grid index of one JSONL row line without parsing the row:
    rows are ``[index, ...]`` with at least two elements, so the index
    is the text between ``[`` and the first comma.  Falls back to a
    full parse on anything unexpected."""
    try:
        return int(line[line.index("[") + 1 : line.index(",")])
    except ValueError:
        return int(json.loads(line)[0])


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class CampaignStore:
    """A campaign root directory: header, segments, index, loose rows.

    Use :meth:`create` for a new campaign and :meth:`open` for an
    existing one; the constructor itself does no I/O.
    """

    def __init__(
        self,
        root: str | Path,
        fallback: Optional[Any] = None,
        writer_token: Optional[str] = None,
    ):
        self.root = Path(root)
        #: Optional v1 :class:`~repro.runner.store.ResultStore` consulted
        #: (after the loose rows) by :meth:`load_dict` — read-through
        #: from the per-file store without migrating it.
        self.fallback = fallback
        #: Collision-free segment namespace for this writer: when set,
        #: new segments are named ``seg-<token>-NNNNNN`` so concurrent
        #: writers (shards, parallel processes) sharing one directory
        #: can never race each other to the same name.  ``None`` keeps
        #: the legacy single-writer ``seg-NNNNNN`` names byte-for-byte.
        if writer_token is not None and not _WRITER_TOKEN_RE.fullmatch(
            writer_token
        ):
            raise ValueError(
                f"writer token {writer_token!r} must match "
                f"[A-Za-z0-9_]{{1,32}}"
            )
        self.writer_token = writer_token
        self._header: Optional[dict] = None
        self._grid: Optional[ScenarioGrid] = None
        self._loose_map: Optional[Dict[str, dict]] = None

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        grid: ScenarioGrid,
        fallback: Optional[Any] = None,
        compression: str = COMPRESSION_NONE,
        writer_token: Optional[str] = None,
        shard: Optional[dict] = None,
    ) -> "CampaignStore":
        """Initialize a campaign root for ``grid``.

        Re-creating over an existing root is allowed only when the grid
        hash matches (the resume case; the existing header's
        ``compression`` then stays authoritative); anything else raises
        rather than silently mixing two campaigns in one directory.
        ``compression`` selects the on-disk form of *new* segments
        (``"none"`` or ``"gzip"``); reads handle both transparently.
        ``writer_token`` namespaces this writer's segment names (see
        :meth:`_segment_name`); ``shard`` records shard provenance
        (``{"index", "count", "ranges"}``) in the header of a
        shard-owned root so status and merge tooling can tell shard
        stores from full campaigns.
        """
        from ..backends import get_backend

        get_backend(grid.backend)  # unknown backend -> KeyError now
        grid.validate()  # bad axis/base values fail before any I/O
        if compression not in COMPRESSIONS:
            raise ValueError(
                f"unknown compression {compression!r}; "
                f"choose from {COMPRESSIONS}"
            )
        store = cls(root, fallback=fallback, writer_token=writer_token)
        header_path = store.root / "campaign.json"
        grid_hash = grid.content_hash()
        if header_path.is_file():
            existing = json.loads(header_path.read_text())
            if existing.get("grid_hash") != grid_hash:
                # Grid-schema drift (v1 headers hashed the axis-order-
                # less form): if the stored grid re-hashes to the same
                # v2 identity as the requested one, it IS the same
                # campaign — resume under the root's original hash (the
                # segments are tagged with it).  Anything else is a
                # genuinely different grid.
                try:
                    legacy_hash = ScenarioGrid.from_dict(
                        existing["grid"]
                    ).content_hash()
                except (KeyError, TypeError, ValueError):
                    legacy_hash = None
                if legacy_hash != grid_hash:
                    raise ValueError(
                        f"campaign root {store.root} already holds a "
                        f"different grid ({existing.get('grid_hash')!r}; "
                        f"note: grids serialized before "
                        f"{GRID_SCHEMA!r} hash differently — a root "
                        f"whose axis order cannot be recovered must be "
                        f"re-run)"
                    )
            return cls.open(
                root, fallback=fallback, writer_token=writer_token
            )
        header = {
            "schema": CAMPAIGN_SCHEMA,
            "kind": grid.kind,
            "backend": grid.backend,
            "grid": grid.to_dict(),
            "grid_hash": grid_hash,
            "n_points": len(grid),
            "compression": compression,
            "producer": {
                "backend": grid.backend,
                "store_schema": CAMPAIGN_SCHEMA,
                "grid_schema": GRID_SCHEMA,
            },
        }
        if shard is not None:
            header["shard"] = {
                "index": int(shard["index"]),
                "count": int(shard["count"]),
                "ranges": [
                    [int(s), int(e)] for s, e in shard.get("ranges", [])
                ],
            }
        atomic_write_text(
            header_path, json.dumps(header, sort_keys=True, indent=1) + "\n"
        )
        store._header = header
        store._write_index([], [])
        return store

    @classmethod
    def open(
        cls,
        root: str | Path,
        fallback: Optional[Any] = None,
        writer_token: Optional[str] = None,
    ) -> "CampaignStore":
        """Open an existing campaign root (rebuilding a lost index)."""
        store = cls(root, fallback=fallback, writer_token=writer_token)
        store.header  # validates
        if store._read_index() is None:
            store.rebuild_index()
        return store

    @property
    def header(self) -> dict:
        if self._header is None:
            path = self.root / "campaign.json"
            if not path.is_file():
                raise FileNotFoundError(f"no campaign at {self.root}")
            header = json.loads(path.read_text())
            if header.get("schema") != CAMPAIGN_SCHEMA:
                raise ValueError(
                    f"unrecognized campaign schema "
                    f"{header.get('schema')!r} in {path}"
                )
            self._header = header
        return self._header

    @property
    def grid(self) -> ScenarioGrid:
        if self._grid is None:
            self._grid = ScenarioGrid.from_dict(self.header["grid"])
        return self._grid

    @property
    def n_points(self) -> int:
        return int(self.header["n_points"])

    @property
    def compression(self) -> str:
        """Storage mode of *newly written* segments (header field;
        pre-compression campaigns read as ``"none"``)."""
        return self.header.get("compression", COMPRESSION_NONE)

    @property
    def binary(self) -> bool:
        """True when new columnar appends land as binary segments."""
        return self.compression == COMPRESSION_BINARY

    @property
    def shard(self) -> Optional[dict]:
        """Shard provenance (``{"index", "count", "ranges"}``) when this
        root was created as one shard of a larger campaign, else None."""
        return self.header.get("shard")

    # -- index ---------------------------------------------------------------
    def _read_index(self) -> Optional[dict]:
        path = self.root / "index.json"
        if not path.is_file():
            return None
        try:
            index = json.loads(path.read_text())
        except ValueError:
            return None
        if index.get("schema") != INDEX_SCHEMA:
            return None
        # Stale whenever a segment landed without an index update (the
        # crash window between segment write and index write).  Files
        # recorded as ignored (foreign/unreadable) are accounted for so
        # their presence does not force a rescan on every operation.
        listed = {entry["file"] for entry in index.get("segments", [])}
        listed |= {entry["file"] for entry in index.get("loose", [])}
        listed |= set(index.get("ignored", []))
        on_disk = {
            str(p.relative_to(self.root))
            for pattern in (
                "segments/*.jsonl",
                "segments/*.jsonl.gz",
                "segments/*.bin",
                "loose/*.jsonl",
                "loose/*.jsonl.gz",
            )
            for p in self.root.glob(pattern)
        }
        if listed != on_disk:
            return None
        return index

    def _write_index(
        self,
        segments: List[dict],
        loose: List[dict],
        ignored: Sequence[str] = (),
    ) -> None:
        with span("store.index"):
            atomic_write_text(
                self.root / "index.json",
                json.dumps(
                    self._index_payload(segments, loose, ignored),
                    sort_keys=True,
                    indent=1,
                )
                + "\n",
            )

    def _index(self) -> dict:
        index = self._read_index()
        if index is None:
            index = self.rebuild_index()
        return index

    def rebuild_index(self) -> dict:
        """Reconstruct ``index.json`` from the segment headers — the
        resume-from-segments path after a crash or a deleted index.

        Files whose header does not parse or belongs to a different
        campaign are recorded under ``ignored`` (never as coverage), so
        one rebuild converges even with foreign files in the tree.
        """
        segments: List[dict] = []
        loose: List[dict] = []
        ignored: List[str] = []
        seg_paths = (
            sorted(self.root.glob("segments/*.jsonl"))
            + sorted(self.root.glob("segments/*.jsonl.gz"))
            + sorted(self.root.glob("segments/*.bin"))
        )
        for path in sorted(seg_paths):
            header = self._segment_header(path)
            if header is None:
                ignored.append(str(path.relative_to(self.root)))
                continue
            entry = {
                "file": str(path.relative_to(self.root)),
                "ranges": header["ranges"],
                "count": header["count"],
                "encoding": header["encoding"],
                "backend": header["backend"],
            }
            if "writer" in header:
                entry["writer"] = header["writer"]
            segments.append(entry)
        loose_paths = sorted(self.root.glob("loose/*.jsonl")) + sorted(
            self.root.glob("loose/*.jsonl.gz")
        )
        for path in sorted(loose_paths):
            header = self._segment_header(path)
            if header is None:
                ignored.append(str(path.relative_to(self.root)))
                continue
            loose.append(
                {
                    "file": str(path.relative_to(self.root)),
                    "count": header["count"],
                    "encoding": header["encoding"],
                    "backend": header["backend"],
                }
            )
        self._write_index(segments, loose, ignored)
        return self._index_payload(segments, loose, ignored)

    def _index_payload(self, segments, loose, ignored=()) -> dict:
        return {
            "schema": INDEX_SCHEMA,
            "campaign": self.header["grid_hash"],
            "segments": segments,
            "loose": loose,
            "ignored": list(ignored),
        }

    def _segment_header(self, path: Path) -> Optional[dict]:
        # EOFError: gzip's "compressed file ended before the
        # end-of-stream marker" (a truncated .jsonl.gz) is not an
        # OSError — it must count as unreadable, not crash the rebuild.
        # Binary segments are size-validated against their declared
        # column layout, so truncation (or trailing garbage) lands in
        # the same ValueError path (see
        # :func:`~repro.runner.io.read_segment_header`); KeyError
        # covers a parseable-but-incomplete binary header.
        try:
            header = read_segment_header(path)
        except (OSError, ValueError, EOFError, KeyError, TypeError):
            return None
        if header.get("schema") != SEGMENT_SCHEMA:
            return None
        if header.get("campaign") != self.header["grid_hash"]:
            return None
        return header

    # -- coverage ------------------------------------------------------------
    def completed_ranges(self) -> List[Tuple[int, int]]:
        """Merged [start, stop) index ranges covered by the segments."""
        ranges: List[Sequence[int]] = []
        for entry in self._index()["segments"]:
            ranges.extend(entry["ranges"])
        return _merge_ranges(ranges)

    def missing_ranges(self) -> List[Tuple[int, int]]:
        """Complement of :meth:`completed_ranges` over the grid."""
        missing: List[Tuple[int, int]] = []
        cursor = 0
        for start, stop in self.completed_ranges():
            if start > cursor:
                missing.append((cursor, min(start, self.n_points)))
            cursor = max(cursor, stop)
        if cursor < self.n_points:
            missing.append((cursor, self.n_points))
        return missing

    @property
    def n_completed(self) -> int:
        return sum(stop - start for start, stop in self.completed_ranges())

    # -- writing -------------------------------------------------------------
    def _segment_name(self, n_existing: int, suffix: str) -> str:
        """Next free segment name for this writer.

        Without a writer token: ``segments/seg-NNNNNN`` — the seq
        counter starts at the index's segment count and skips numbers
        any on-disk form already occupies (compaction may renumber).
        That scheme is inherently single-writer: two processes counting
        the same directory race to the same name.  With a token the
        name is ``segments/seg-<token>-NNNNNN``, so writers with
        distinct tokens can never collide no matter how they interleave
        (the seq scan then only defends against this writer's own
        leftovers).
        """
        stem = (
            f"segments/seg-{self.writer_token}-"
            if self.writer_token is not None
            else "segments/seg-"
        )
        seq = n_existing
        while any(
            (self.root / f"{stem}{seq:06d}{s}").exists()
            for s in _SEGMENT_SUFFIXES
        ):
            seq += 1
        return f"{stem}{seq:06d}{suffix}"

    def _segment_entry(
        self,
        name: str,
        encoding: str,
        ranges: Sequence[Tuple[int, int]],
        count: int,
        backend: str,
        extra: Optional[dict] = None,
    ) -> Tuple[dict, dict]:
        """``(segment_header, index_entry)`` for one new segment."""
        header = {
            "schema": SEGMENT_SCHEMA,
            "campaign": self.header["grid_hash"],
            "kind": self.header["kind"],
            "backend": backend,
            "encoding": encoding,
            "ranges": [[int(s), int(e)] for s, e in ranges],
            "count": int(count),
        }
        if self.writer_token is not None:
            header["writer"] = self.writer_token
        if extra:
            header.update(extra)
        entry = {
            "file": name,
            "ranges": header["ranges"],
            "count": header["count"],
            "encoding": encoding,
            "backend": backend,
        }
        if self.writer_token is not None:
            entry["writer"] = self.writer_token
        return header, entry

    def _write_segment(
        self,
        body_lines: List[str],
        encoding: str,
        ranges: Sequence[Tuple[int, int]],
        count: int,
        backend: Optional[str],
        existing_segments: List[dict],
        compression: Optional[str] = None,
    ) -> Tuple[Path, dict]:
        """Write one JSONL segment file (atomic); return its index entry.

        The single owner of the text-segment protocol — naming, tagged
        header, file body — shared by the row and the columnar append
        paths.  ``compression`` overrides the campaign-header default
        for this segment (the ``compact --compress`` migration path);
        gzip segments carry a ``.jsonl.gz`` name, so every reader
        dispatches by suffix (a ``"binary"`` campaign writes its *row*
        segments plain — only columnar data has a binary form).  Does
        *not* touch ``index.json``; callers batch their index updates.
        """
        backend = backend if backend is not None else self.header["backend"]
        compression = (
            compression if compression is not None else self.compression
        )
        suffix = (
            ".jsonl.gz" if compression == COMPRESSION_GZIP else ".jsonl"
        )
        name = self._segment_name(len(existing_segments), suffix)
        header, entry = self._segment_entry(
            name, encoding, ranges, count, backend
        )
        with span("store.encode"):
            lines = [json.dumps(header, sort_keys=True)]
            lines.extend(body_lines)
            text = "\n".join(lines) + "\n"
        target = self.root / name
        with span("store.write"):
            atomic_write_text(
                target,
                text,
                compress=compression == COMPRESSION_GZIP,
            )
        if telemetry.active_registry() is not None:
            telemetry.count("store.segments_written")
            telemetry.count("store.bytes_encoded", len(text))
            telemetry.count("store.bytes_written", target.stat().st_size)
        return target, entry

    def _write_segment_binary(
        self,
        columns: Sequence,
        encoding: str,
        ranges: Sequence[Tuple[int, int]],
        count: int,
        backend: Optional[str],
        existing_segments: List[dict],
    ) -> Tuple[Path, dict]:
        """Write one binary-columnar segment (atomic).

        Layout: the usual tagged JSON header line (plus a ``"columns"``
        ``[name, dtype]`` list) and then one raw little-endian block
        per column — ``numpy.ndarray.tobytes()`` of the kernel output,
        no per-point formatting.  Indices are implicit: position ``p``
        is the ``p``-th index of the sorted ``ranges``.
        """
        import numpy as np

        backend = backend if backend is not None else self.header["backend"]
        layout = _BIN_COLUMNS[encoding]
        if len(columns) != len(layout):
            raise ValueError(
                f"{encoding!r} takes {len(layout)} column(s), "
                f"got {len(columns)}"
            )
        name = self._segment_name(len(existing_segments), ".bin")
        header, entry = self._segment_entry(
            name, encoding, ranges, count, backend,
            extra={"columns": [[n, d] for n, d in layout]},
        )
        with span("store.encode"):
            blocks = []
            for (col_name, dtype), column in zip(layout, columns):
                block = np.ascontiguousarray(
                    np.asarray(column, dtype=dtype)
                )
                if block.shape != (int(count),):
                    raise ValueError(
                        f"column {col_name!r}: {block.shape[0] if block.ndim == 1 else block.shape} "
                        f"value(s) for a {count}-point segment"
                    )
                blocks.append(block.tobytes())
            data = (
                json.dumps(header, sort_keys=True) + "\n"
            ).encode("utf-8") + b"".join(blocks)
        target = self.root / name
        with span("store.write"):
            atomic_write_bytes(target, data)
        if telemetry.active_registry() is not None:
            telemetry.count("store.segments_written")
            telemetry.count("store.bytes_encoded", len(data))
            telemetry.count("store.bytes_written", target.stat().st_size)
        return target, entry

    @staticmethod
    def _encode_rows(rows: List[list], encoding: str) -> List[str]:
        """Body lines for row-encoded segments."""
        if encoding in (ENC_BENCH_MEAN, ENC_PATTERN_MEAN):
            # Row-per-point compact form ([int, float, ...] is valid
            # JSON, repr is cheaper than json.dumps per row).
            return [
                "[" + ",".join(repr(v) for v in row) + "]" for row in rows
            ]
        return [
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in rows
        ]

    def append_chunk(
        self,
        rows: List[list],
        encoding: str,
        ranges: Sequence[Tuple[int, int]],
        backend: Optional[str] = None,
    ) -> Path:
        """Append one completed chunk as a new segment (atomic).

        ``rows`` are pre-encoded row lists (first element the grid
        index); ``ranges`` the [start, stop) coverage they represent.
        Rows are written index-sorted (stable, so same-index duplicates
        keep their submission order) — the invariant the k-way merge
        reads rely on.
        """
        index = self._index()
        segments = list(index["segments"])
        rows = sorted(rows, key=lambda row: int(row[0]))
        with span("store.encode"):
            body_lines = self._encode_rows(rows, encoding)
        target, entry = self._write_segment(
            body_lines, encoding, ranges,
            len(rows), backend, segments,
        )
        segments.append(entry)
        self._write_index(
            segments, index["loose"], index.get("ignored", [])
        )
        return target

    def append_columns(
        self,
        start: int,
        stop: int,
        columns: Sequence[Sequence],
        encoding: str,
        backend: Optional[str] = None,
    ) -> Path:
        """Append one *contiguous* chunk in columnar form (hot path).

        ``columns`` are whole-chunk value arrays (times, and for
        patterns bytes/links) — numpy arrays straight off the kernel,
        or plain lists; point ``i`` of every column belongs to grid
        index ``start + i``.  A ``"binary"`` campaign writes them as
        raw little-endian blocks (``ndarray.tobytes()``, zero per-point
        formatting); otherwise one C-level ``json.dumps`` per column —
        either way no Python format call per point.
        """
        import numpy as np

        if encoding not in (ENC_BENCH_COLS, ENC_PATTERN_COLS):
            raise ValueError(f"not a columnar encoding: {encoding!r}")
        index = self._index()
        segments = list(index["segments"])
        if self.binary:
            target, entry = self._write_segment_binary(
                columns, _BIN_FOR_COLS[encoding],
                [(start, stop)], int(stop) - int(start),
                backend, segments,
            )
        else:
            with span("store.encode"):
                body_lines = [
                    json.dumps(
                        column.tolist()
                        if isinstance(column, np.ndarray)
                        else list(column)
                    )
                    for column in columns
                ]
            target, entry = self._write_segment(
                body_lines,
                encoding, [(start, stop)], int(stop) - int(start),
                backend, segments,
            )
        segments.append(entry)
        self._write_index(
            segments, index["loose"], index.get("ignored", [])
        )
        return target

    # -- reading -------------------------------------------------------------
    def _iterations_at(self, index: int) -> int:
        grid = self.grid
        if "iterations" in grid.axes:
            return int(grid.assignment_at(index)["iterations"])
        if "iterations" in grid.base:
            return int(grid.base["iterations"])
        return 30 if grid.kind == KIND_BENCH else 10

    def _decode_row(self, row: list, encoding: str) -> Tuple[int, dict]:
        index = int(row[0])
        if encoding == ENC_RESULT:
            return index, row[1]
        iterations = self._iterations_at(index)
        if encoding == ENC_BENCH_MEAN:
            return index, {
                "times": [float(row[1])] * iterations,
                "retries": 0,
                "verified": True,
            }
        if encoding == ENC_PATTERN_MEAN:
            return index, {
                "times": [float(row[1])] * iterations,
                "bytes_per_iteration": int(row[2]),
                "n_links": int(row[3]),
            }
        raise ValueError(f"unknown segment encoding {encoding!r}")

    def _segment_rows(self, entry: dict) -> Iterator[Tuple[int, list, str]]:
        """One segment's rows as ``(index, row, row_encoding)``,
        ascending, at most one row per index (a same-index duplicate
        *within* a segment resolves to the later file position).

        Columnar and binary segments unfold into the equivalent
        ``*-mean`` row dialect, so every consumer above the merge sees
        one row form per kind.  Binary columns stream from read-only
        memmaps — nothing beyond the touched pages is resident.
        """
        path = self.root / entry["file"]
        encoding = entry["encoding"]
        if encoding in _BIN_COLUMNS:
            header, columns = read_binary_segment(path)
            row_encoding = _ROW_ENC_FOR_BIN[encoding]
            pos = 0
            for start, stop in header["ranges"]:
                for j in range(int(start), int(stop)):
                    yield j, [
                        j, *(col[pos].item() for col in columns)
                    ], row_encoding
                    pos += 1
            return
        if encoding in (ENC_BENCH_COLS, ENC_PATTERN_COLS):
            header, columns = read_columnar_text_segment(path)
            start = header["ranges"][0][0]
            row_encoding = (
                ENC_BENCH_MEAN
                if encoding == ENC_BENCH_COLS
                else ENC_PATTERN_MEAN
            )
            for j, values in enumerate(zip(*columns)):
                yield start + j, [start + j, *values], row_encoding
            return
        # Append paths write rows index-sorted; a v2 store written by
        # an older session may not be.  Sortedness is checked first on
        # the index prefixes alone (no row parse, O(rows) ints): the
        # sorted common case then *streams* — one row parsed and
        # yielded at a time, duplicate earlier occurrences skipped
        # without ever parsing them — instead of materializing the
        # whole segment before the first yield.  Only a genuinely
        # unsorted segment pays the load-everything-and-sort fallback.
        indices: List[int] = []
        sorted_ok = True
        with open_segment_text(path) as handle:
            handle.readline()
            for line in handle:
                if not line.strip():
                    continue
                idx = _row_index(line)
                if indices and idx < indices[-1]:
                    sorted_ok = False
                    break
                indices.append(idx)
        if sorted_ok:
            with open_segment_text(path) as handle:
                handle.readline()
                k = 0
                for line in handle:
                    if not line.strip():
                        continue
                    idx = indices[k]
                    k += 1
                    if k < len(indices) and indices[k] == idx:
                        continue  # a later same-index row wins
                    yield idx, json.loads(line), encoding
            return
        with open_segment_text(path) as handle:
            handle.readline()
            rows = [json.loads(line) for line in handle if line.strip()]
        # Stable sort: same-index duplicates keep file order, so the
        # later occurrence wins below — the pre-streaming semantics.
        rows.sort(key=lambda row: int(row[0]))
        for k, row in enumerate(rows):
            if k + 1 < len(rows) and int(rows[k + 1][0]) == int(row[0]):
                continue
            yield int(row[0]), row, encoding

    def _merged_rows(self) -> Iterator[Tuple[int, list, str]]:
        """Streaming k-way merge over all segments: ``(index, row,
        row_encoding)`` strictly ascending, exactly one row per covered
        index, latest-append-wins on overlap.

        Segments are *lazily activated*: each stays unopened until the
        merge cursor reaches its first covered index, so a compacted or
        append-only store (disjoint ranges) holds O(one segment) in
        memory however many segments it has.  The heap orders by
        ``(index, -seq)`` — on duplicate coverage the highest segment
        sequence (the latest append) pops first and later pops of the
        same index are dropped.
        """
        import heapq

        entries = self._index()["segments"]
        # Activation schedule: (first covered index, seq), reverse-
        # sorted so the next segment due is popped from the end.
        schedule = sorted(
            (
                (min(int(s) for s, _ in entry["ranges"]), seq)
                for seq, entry in enumerate(entries)
                if entry["ranges"]
            ),
            reverse=True,
        )
        # Heap entries: (index, -seq, row, encoding, iterator).
        # (index, -seq) is unique — seq appears once — so the row and
        # iterator never get compared.
        heap: List[Tuple[int, int, list, str, Iterator]] = []

        def activate_due(cursor: int) -> None:
            while schedule and schedule[-1][0] <= cursor:
                _, seq = schedule.pop()
                it = self._segment_rows(entries[seq])
                first = next(it, None)
                if first is not None:
                    index, row, enc = first
                    heapq.heappush(heap, (index, -seq, row, enc, it))

        last_index = -1
        while heap or schedule:
            if not heap:
                activate_due(schedule[-1][0])
                continue
            index, negseq, row, enc, it = heapq.heappop(heap)
            if schedule and schedule[-1][0] <= index:
                # A not-yet-opened segment covers an index <= this one;
                # it may hold a later append of the same index.  Put
                # the row back, open everything due, re-pop.
                heapq.heappush(heap, (index, negseq, row, enc, it))
                activate_due(index)
                continue
            nxt = next(it, None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], negseq, nxt[1], nxt[2], it))
            if index == last_index:
                continue  # an earlier append of an index already yielded
            last_index = index
            yield index, row, enc

    def iter_rows(self) -> Iterator[Tuple[int, dict]]:
        """Yield ``(grid_index, result_dict)`` sorted by index, one per
        point (on duplicate coverage the latest append wins).  Streams:
        peak memory is bounded by the largest segment, not the
        campaign (see :meth:`_merged_rows`)."""
        for index, row, encoding in self._merged_rows():
            yield self._decode_row(row, encoding)

    def scenario_at(self, index: int) -> Scenario:
        return self.grid.scenario_at(index)

    def assignment_at(self, index: int) -> Dict[str, Any]:
        return self.grid.assignment_at(index)

    # -- columnar reads ------------------------------------------------------
    def column_names(self) -> Tuple[str, ...]:
        """The store's columnar schema for its kind: ``("times",)`` for
        bench grids, ``("times", "bytes_per_iteration", "n_links")``
        for pattern grids — the same layout binary segments persist."""
        layout = _BIN_COLUMNS[_KIND_BIN[self.header["kind"]]]
        return tuple(name for name, _ in layout)

    def _all_columnar(self) -> bool:
        """True when every indexed segment has a columnar form (the
        analytic encodings) — the gate for the zero-materialization
        read path."""
        entries = self._index()["segments"]
        return all(
            entry["encoding"] in _COLUMNAR_ENCODINGS for entry in entries
        )

    def _survivor_plan(self) -> Tuple[List[Tuple[int, int, int]], List[dict]]:
        """The latest-wins merge, decided at the *index-range* level.

        Walks the segments newest-first, claiming each one's covered
        ranges minus whatever newer segments already claimed: the
        result is a list of disjoint ``(start, stop, seq)`` pieces,
        sorted by start, where ``seq`` is the segment that owns those
        points — computed entirely from ``index.json`` metadata, before
        a single segment file is opened.  Row-level reads resolve the
        same duplicates one heap pop at a time; here a million-point
        overlap costs one range subtraction.
        """
        entries = self._index()["segments"]
        covered: List[Tuple[int, int]] = []
        pieces: List[Tuple[int, int, int]] = []
        for seq in range(len(entries) - 1, -1, -1):
            ranges = [
                (int(s), int(e)) for s, e in entries[seq]["ranges"]
            ]
            for start, stop in ranges:
                pieces.extend(
                    (p_start, p_stop, seq)
                    for p_start, p_stop in _subtract_ranges(
                        start, stop, covered
                    )
                )
            covered = _merge_ranges(covered + ranges)
        pieces.sort()
        return pieces, entries

    def _segment_columns(self, entry: dict):
        """One segment as ``(index_array, {name: column array})``,
        ascending, deduplicated.

        Binary segments slice straight off read-only memmaps (zero
        parse, zero copy); columnar JSONL decodes one whole-column
        ``json.loads`` per column; ``*-mean`` rows fall back to the row
        reader and columnize its output.  Every form lands on the
        kind's one column layout (:meth:`column_names`).
        """
        import numpy as np

        path = self.root / entry["file"]
        encoding = entry["encoding"]
        layout = _BIN_COLUMNS[
            _BIN_FOR_COLS.get(encoding)
            or _BIN_FOR_MEAN.get(encoding)
            or encoding
        ]
        with span("store.read.segment"):
            if encoding in _BIN_COLUMNS:
                header, raw = read_binary_segment(path)
                indices = _ranges_to_index_array(header["ranges"])
                columns = {
                    name: column
                    for (name, _), column in zip(layout, raw)
                }
            elif encoding in _BIN_FOR_COLS:
                header, raw = read_columnar_text_segment(path)
                indices = _ranges_to_index_array(header["ranges"])
                columns = {
                    name: np.asarray(column, dtype=dtype)
                    for (name, dtype), column in zip(layout, raw)
                }
            else:
                rows = [
                    row for _, row, _ in self._segment_rows(entry)
                ]
                indices = np.array(
                    [int(row[0]) for row in rows], dtype=np.int64
                )
                columns = {
                    name: np.array(
                        [row[1 + k] for row in rows], dtype=dtype
                    )
                    for k, (name, dtype) in enumerate(layout)
                }
        return indices, columns

    def _filter_checks(
        self, filters: Optional[Mapping[str, Any]]
    ) -> Optional[List[Tuple[int, int, frozenset]]]:
        """Axis filters as ``(stride, size, code set)`` checks against
        the row-major index.  Base-field filters (and unknown names)
        resolve here: ``None`` means no point can ever match."""
        grid = self.grid
        strides = grid._strides()
        checks: List[Tuple[int, int, frozenset]] = []
        for name, value in (filters or {}).items():
            if name in grid.axes:
                codes = frozenset(
                    i
                    for i, v in enumerate(grid.axes[name])
                    if v == value
                )
                if not codes:
                    return None
                checks.append(
                    (strides[name], len(grid.axes[name]), codes)
                )
            elif name not in grid.base or grid.base[name] != value:
                return None
        return checks

    @staticmethod
    def _checks_mask(indices, checks):
        """Vectorized form of the digit-wise filter: one ``//`` + ``%``
        per check over the whole index array."""
        import numpy as np

        mask = np.ones(len(indices), dtype=bool)
        for stride, size, codes in checks:
            digits = (indices // stride) % size
            if len(codes) == 1:
                mask &= digits == next(iter(codes))
            else:
                mask &= np.isin(digits, np.fromiter(codes, np.int64))
        return mask

    def iter_columns(
        self,
        chunk_size: int = DEFAULT_READ_CHUNK,
        where: Optional[Mapping[str, Any]] = None,
    ) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        """Yield ``(index_array, {name: column array})`` chunks,
        ascending, one value per covered point, latest-append-wins —
        the columnar twin of :meth:`iter_rows`, with ndarrays
        end-to-end and no per-point Python objects anywhere.

        The merge happens at the index-range level
        (:meth:`_survivor_plan`), then each surviving piece is one
        array slice off its segment's columns — memmap views for
        binary segments, so a full drain never materializes more than
        one chunk (plus one decoded text segment when the store mixes
        JSONL in).  Chunks hold at most ``chunk_size`` points; the
        final chunk holds the remainder.  ``where`` applies the
        :meth:`query` filter semantics vectorized, so filtered-out
        points are never copied out of their segment.

        Requires every segment to carry a columnar encoding (the
        analytic ``*-bin``/``*-cols``/``*-mean`` forms): a store
        holding full-``result`` rows raises ``ValueError`` — those
        points have no fixed column schema; use :meth:`iter_rows`.
        """
        import numpy as np

        chunk_size = max(1, int(chunk_size))
        checks = self._filter_checks(where)
        if checks is None:
            return
        with span("store.read.plan"):
            pieces, entries = self._survivor_plan()
            foreign = {
                entry["encoding"]
                for entry in entries
                if entry["encoding"] not in _COLUMNAR_ENCODINGS
            }
            if foreign:
                raise ValueError(
                    f"store holds non-columnar segment encoding(s) "
                    f"{sorted(foreign)}; only analytic campaigns "
                    f"support columnar reads — use iter_rows()"
                )
            # One decoded-segment cache, evicted as soon as the plan
            # has no further piece for a segment: peak memory is the
            # chunk buffer plus the segments the current piece overlaps.
            last_use = {
                seq: i for i, (_, _, seq) in enumerate(pieces)
            }
        names = self.column_names()
        buf_idx: List[Any] = []
        buf_cols: Dict[str, List[Any]] = {name: [] for name in names}
        buffered = 0
        cache: Dict[int, Tuple[Any, Dict[str, Any]]] = {}

        def assembled() -> Tuple[Any, Dict[str, Any]]:
            indices = (
                buf_idx[0]
                if len(buf_idx) == 1
                else np.concatenate(buf_idx)
            )
            columns = {
                name: (
                    parts[0]
                    if len(parts) == 1
                    else np.concatenate(parts)
                )
                for name, parts in buf_cols.items()
            }
            return indices, columns

        def emit(indices, columns):
            telemetry.count("store.read.chunks")
            telemetry.count("store.read.points", len(indices))
            return indices, columns

        for i, (start, stop, seq) in enumerate(pieces):
            if seq not in cache:
                cache[seq] = self._segment_columns(entries[seq])
            seg_idx, seg_cols = cache[seq]
            if last_use[seq] == i:
                del cache[seq]
            lo = int(np.searchsorted(seg_idx, start))
            hi = int(np.searchsorted(seg_idx, stop))
            if hi == lo:
                continue
            piece_idx = seg_idx[lo:hi]
            piece_cols = {
                name: seg_cols[name][lo:hi] for name in names
            }
            if checks:
                mask = self._checks_mask(piece_idx, checks)
                if not mask.any():
                    continue
                if not mask.all():
                    piece_idx = piece_idx[mask]
                    piece_cols = {
                        name: column[mask]
                        for name, column in piece_cols.items()
                    }
            buf_idx.append(piece_idx)
            for name in names:
                buf_cols[name].append(piece_cols[name])
            buffered += len(piece_idx)
            while buffered >= chunk_size:
                indices, columns = assembled()
                yield emit(
                    indices[:chunk_size],
                    {
                        name: column[:chunk_size]
                        for name, column in columns.items()
                    },
                )
                buf_idx = [indices[chunk_size:]]
                buf_cols = {
                    name: [column[chunk_size:]]
                    for name, column in columns.items()
                }
                buffered -= chunk_size
        if buffered:
            yield emit(*assembled())

    def read_columns(
        self, where: Optional[Mapping[str, Any]] = None
    ) -> Tuple[Any, Dict[str, Any]]:
        """Every covered point's columns in one pair of arrays:
        ``(index_array, {name: column})`` — :meth:`iter_columns`
        materialized (the bulk-read call a query service or exporter
        builds on).  ``where`` filters vectorized, before any copy."""
        import numpy as np

        parts = list(self.iter_columns(where=where))
        if not parts:
            layout = _BIN_COLUMNS[_KIND_BIN[self.header["kind"]]]
            return (
                np.empty(0, dtype=np.int64),
                {
                    name: np.empty(0, dtype=dtype)
                    for name, dtype in layout
                },
            )
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([indices for indices, _ in parts]),
            {
                name: np.concatenate(
                    [columns[name] for _, columns in parts]
                )
                for name in self.column_names()
            },
        )

    def export_npz(
        self, target, where: Optional[dict] = None
    ) -> int:
        """Dump completed points columnar as an ``.npz``: the index
        array, one array per store column, and one decoded value array
        per grid axis (``axis_<name>``) — zero row dicts anywhere, the
        whole export is array slices and one vectorized axis decode.
        Returns the point count.  Requires an all-analytic store
        (:meth:`iter_columns`)."""
        import numpy as np

        indices, columns = self.read_columns(where=where)
        arrays: Dict[str, Any] = {"indices": indices}
        arrays.update(columns)
        grid = self.grid
        codes = grid.axis_codes_for_indices(indices)
        for name, values in grid.axes.items():
            arrays[f"axis_{name}"] = np.take(
                np.asarray(values), codes[name]
            )
        write_npz(target, arrays)
        return int(len(indices))

    def query(self, **filters) -> Iterator[Tuple[int, Dict[str, Any], dict]]:
        """Yield ``(index, axis_assignment, result_dict)`` for completed
        points whose axis assignment matches every filter, e.g.
        ``store.query(approach="pt2pt_part", n_threads=4)``.

        Axis filters are decoded once into matching *value codes* and
        tested digit-wise against the row-major index — integer
        arithmetic per point instead of materializing the assignment
        dict; the filter runs on the merged ``(index, row)`` stream
        *before* any decode, so filtered-out points are never
        materialized.  Base-field filters (and unknown names) resolve
        before any row is read: a mismatch yields nothing.

        All-analytic stores take the vectorized path instead: the
        filter is one boolean mask over each :meth:`iter_columns`
        chunk's index array, and rows exist only for the survivors.
        """
        checks = self._filter_checks(filters)
        if checks is None:
            return
        if self._all_columnar():
            row_enc = _ROW_ENC_FOR_BIN[_KIND_BIN[self.header["kind"]]]
            names = self.column_names()
            for indices, columns in self.iter_columns(
                where=filters or None
            ):
                cols = [columns[name] for name in names]
                for k in range(len(indices)):
                    index = int(indices[k])
                    _, result = self._decode_row(
                        [index, *(c[k].item() for c in cols)], row_enc
                    )
                    yield index, self.assignment_at(index), result
            return
        for index, row, encoding in self._merged_rows():
            if all(
                (index // stride) % size in codes
                for stride, size, codes in checks
            ):
                _, result = self._decode_row(row, encoding)
                yield index, self.assignment_at(index), result

    def export_jsonl(self, target, where: Optional[dict] = None) -> int:
        """Dump completed points as JSON-lines ``{"index", "assignment",
        "result"}`` records to a path or file object
        (:func:`~repro.runner.io.write_jsonl`); returns the row count.
        ``where`` filters points by spec field values (the
        :meth:`query` semantics)."""
        def _records():
            if where:
                for index, assignment, result in self.query(**where):
                    yield index, assignment, result
            else:
                for index, result in self.iter_rows():
                    yield index, self.assignment_at(index), result

        return write_jsonl(
            target,
            (
                {"index": index, "assignment": assignment, "result": result}
                for index, assignment, result in _records()
            ),
        )

    # -- maintenance ---------------------------------------------------------
    def compact(
        self,
        compress: Optional[bool] = None,
        binary: Optional[bool] = None,
    ) -> dict:
        """Merge the indexed segments into few large, sorted,
        duplicate-free segments; returns a summary dict.

        ``compress=True`` writes the replacement segments gzipped (and
        records gzip as the campaign's compression for future appends)
        — the in-place migration behind ``campaign compact
        --compress``; ``binary=True`` rewrites analytic ``*-mean``
        rows as binary-columnar ``.bin`` segments instead (``campaign
        compact --binary`` — full-result and hashed rows stay JSONL,
        having no columnar form); ``binary=False`` converts a binary
        campaign back to plain JSONL.  ``None`` for both keeps the
        campaign's current setting.  The two migrations are mutually
        exclusive.

        Streaming: rows come off the k-way merge already sorted and
        deduplicated and are flushed per ``COMPACT_SEGMENT_POINTS``
        buffer, so peak memory is one output segment plus one input
        segment — never the campaign.

        A binary target over an all-analytic source (the
        ``--binary``-again / binary→binary case) skips rows entirely:
        surviving column blocks move as :meth:`iter_columns` array
        slices straight into :meth:`_write_segment_binary` — zero
        per-row decode or encode anywhere.

        Crash-safe ordering: the replacement segments are fully written
        *before* the index switches over and the old files are removed.
        A crash mid-compact leaves old and new segments coexisting with
        a stale index — :meth:`rebuild_index` then sees both, coverage
        is unchanged, and duplicate rows resolve via latest-append-wins
        (the replacements sort after the originals).
        """
        if binary and compress:
            raise ValueError(
                "compact: binary and gzip are mutually exclusive "
                "segment forms"
            )
        if binary:
            compression = COMPRESSION_BINARY
        elif compress is not None:
            compression = (
                COMPRESSION_GZIP if compress else COMPRESSION_NONE
            )
        elif binary is False and self.compression == COMPRESSION_BINARY:
            compression = COMPRESSION_NONE
        else:
            compression = self.compression
        index = self._index()
        old_files = [entry["file"] for entry in index["segments"]]
        before = len(old_files)
        new_segments: List[dict] = []
        buffers: Dict[str, List[list]] = {}
        points = 0

        if compression == COMPRESSION_BINARY and self._all_columnar():
            bin_encoding = _KIND_BIN[self.header["kind"]]
            names = self.column_names()
            for indices, columns in self.iter_columns(
                chunk_size=COMPACT_SEGMENT_POINTS
            ):
                _, entry = self._write_segment_binary(
                    [columns[name] for name in names], bin_encoding,
                    _index_array_to_ranges(indices), len(indices), None,
                    index["segments"] + new_segments,
                )
                new_segments.append(entry)
                points += len(indices)
            return self._finish_compact(
                index, old_files, before, new_segments, points,
                compression,
            )

        def flush(encoding: str) -> None:
            rows = buffers.pop(encoding, [])
            if not rows:
                return
            ranges = _indices_to_ranges([int(r[0]) for r in rows])
            if encoding in _BIN_COLUMNS:
                columns = list(zip(*(row[1:] for row in rows)))
                _, entry = self._write_segment_binary(
                    columns, encoding, ranges, len(rows), None,
                    index["segments"] + new_segments,
                )
            else:
                _, entry = self._write_segment(
                    self._encode_rows(rows, encoding), encoding, ranges,
                    len(rows), None, index["segments"] + new_segments,
                    compression=compression,
                )
            new_segments.append(entry)

        for _, row, encoding in self._merged_rows():
            if compression == COMPRESSION_BINARY:
                encoding = _BIN_FOR_MEAN.get(encoding, encoding)
            buffers.setdefault(encoding, []).append(row)
            points += 1
            if len(buffers[encoding]) >= COMPACT_SEGMENT_POINTS:
                flush(encoding)
        for encoding in sorted(buffers):
            flush(encoding)
        return self._finish_compact(
            index, old_files, before, new_segments, points, compression
        )

    def _finish_compact(
        self,
        index: dict,
        old_files: List[str],
        before: int,
        new_segments: List[dict],
        points: int,
        compression: str,
    ) -> dict:
        """Compaction's crash-safe switch-over, shared by the row and
        columnar paths: header rewrite (if the compression changed),
        index replacement, old-file removal, summary."""
        if compression != self.compression:
            # Future appends follow the migrated form: rewrite the
            # header before the index switch (a crash between the two
            # only changes the *default* for new segments, never the
            # readability of existing ones).
            header = dict(self.header)
            header["compression"] = compression
            atomic_write_text(
                self.root / "campaign.json",
                json.dumps(header, sort_keys=True, indent=1) + "\n",
            )
            self._header = header
        self._write_index(
            new_segments, index["loose"], index.get("ignored", [])
        )
        for rel in old_files:
            (self.root / rel).unlink(missing_ok=True)
        return {
            "segments_before": before,
            "segments_after": len(new_segments),
            "points": points,
        }

    def stats(self) -> dict:
        """Campaign health summary (the ``campaign status`` view).

        Shard-aware: when this root *is* a shard store, its header
        provenance is echoed under ``"shard"``; when its segments carry
        writer tokens (merged-from-shards or concurrent writers), the
        per-writer coverage appears under ``"shard_segments"``; and
        when shard stores live under ``root/shards/``, each one's
        progress is summarized under ``"shards"``.
        """
        index = self._index()
        total_bytes = sum(
            (self.root / entry["file"]).stat().st_size
            for group in ("segments", "loose")
            for entry in index[group]
            if (self.root / entry["file"]).is_file()
        )
        payload = {
            "root": str(self.root),
            "schema": CAMPAIGN_SCHEMA,
            "kind": self.header["kind"],
            "backend": self.header["backend"],
            "grid_hash": self.header["grid_hash"],
            "n_points": self.n_points,
            "completed": self.n_completed,
            "missing": self.n_points - self.n_completed,
            "segments": len(index["segments"]),
            "loose_rows": sum(e["count"] for e in index["loose"]),
            "total_bytes": total_bytes,
            "compression": self.compression,
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        by_writer: Dict[str, List[Sequence[int]]] = {}
        for entry in index["segments"]:
            if "writer" in entry:
                by_writer.setdefault(entry["writer"], []).extend(
                    entry["ranges"]
                )
        if by_writer:
            payload["shard_segments"] = {
                writer: {
                    "ranges": [
                        [s, e] for s, e in _merge_ranges(ranges)
                    ],
                    "points": sum(
                        e - s for s, e in _merge_ranges(ranges)
                    ),
                }
                for writer, ranges in sorted(by_writer.items())
            }
        shard_roots = sorted(
            p for p in self.root.glob("shards/*")
            if (p / "campaign.json").is_file()
        )
        if shard_roots:
            shards = []
            for shard_root in shard_roots:
                try:
                    sub = CampaignStore.open(shard_root)
                except (OSError, ValueError, KeyError):
                    continue
                if sub.header["grid_hash"] != self.header["grid_hash"]:
                    continue
                entry = {
                    "root": str(shard_root),
                    "completed": sub.n_completed,
                    "completed_ranges": [
                        [s, e] for s, e in sub.completed_ranges()
                    ],
                }
                if sub.shard is not None:
                    entry["shard"] = sub.shard
                    assigned = _merge_ranges(sub.shard["ranges"])
                    done = sub.completed_ranges()
                    missing = []
                    for s, e in assigned:
                        missing.extend(_subtract_ranges(s, e, done))
                    entry["missing_ranges"] = [[s, e] for s, e in missing]
                    entry["missing"] = sum(e - s for s, e in missing)
                shards.append(entry)
            if shards:
                payload["shards"] = shards
        return payload

    # -- v1 interop ----------------------------------------------------------
    def migrate_from_v1(self, result_store) -> int:
        """Copy a v1 per-file store's records into hash-addressed loose
        segments; returns the count of *newly* migrated records.

        Idempotent: records whose hash is already present in the loose
        rows are skipped, so re-running a migration (e.g. after an
        interrupted session) never duplicates data.  The v1 store is
        left untouched.
        """
        present = self._loose()
        rows = [
            {"hash": digest, "scenario": scenario, "result": result}
            for digest, scenario, result in result_store.iter_payloads()
            if digest not in present
        ]
        if not rows:
            return 0
        index = self._index()
        loose = list(index["loose"])
        seq = len(loose)
        name = f"loose/loose-{seq:06d}.jsonl"
        while (self.root / name).exists():  # e.g. an ignored stray file
            seq += 1
            name = f"loose/loose-{seq:06d}.jsonl"
        header = {
            "schema": SEGMENT_SCHEMA,
            "campaign": self.header["grid_hash"],
            "kind": self.header["kind"],
            "backend": "v1-migration",
            "encoding": ENC_HASHED,
            "ranges": [],
            "count": len(rows),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in rows
        )
        atomic_write_text(self.root / name, "\n".join(lines) + "\n")
        loose.append(
            {
                "file": name,
                "count": len(rows),
                "encoding": ENC_HASHED,
                "backend": "v1-migration",
            }
        )
        self._write_index(
            index["segments"], loose, index.get("ignored", [])
        )
        self._loose_map = None
        return len(rows)

    def _loose(self) -> Dict[str, dict]:
        if self._loose_map is None:
            self._loose_map = {}
            for entry in self._index()["loose"]:
                path = self.root / entry["file"]
                with open_segment_text(path) as handle:
                    handle.readline()
                    for line in handle:
                        if not line.strip():
                            continue
                        row = json.loads(line)
                        self._loose_map[row["hash"]] = row["result"]
        return self._loose_map

    def load_dict(self, scenario: Scenario) -> Optional[dict]:
        """Read-through lookup by scenario identity: migrated loose
        rows first, then the attached v1 fallback store (if any)."""
        result = self._loose().get(scenario.content_hash())
        if result is not None:
            return result
        if self.fallback is not None:
            return self.fallback.load_dict(scenario)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<CampaignStore {str(self.root)!r}>"


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def slice_report(
    store: CampaignStore,
    slices: Optional[Mapping[str, Any]] = None,
) -> dict:
    """Aggregate statistics for one campaign slice, straight from
    columns — the first thin consumer of the columnar read path
    (``campaign report --slice axis=value``).

    ``slices`` pins axes (or base fields) with the :meth:`~CampaignStore.query`
    filter semantics; the report then groups the surviving points by
    each *remaining* axis value and gives n / mean / min / max of the
    per-iteration time (µs).  Everything is one
    :meth:`~CampaignStore.read_columns` call plus one vectorized
    axis-code decode — no row dicts at any size.
    """
    import numpy as np

    indices, columns = store.read_columns(where=slices or None)
    times = np.asarray(columns["times"])
    report: Dict[str, Any] = {
        "kind": store.header["kind"],
        "slice": dict(slices or {}),
        "points": int(len(indices)),
        "axes": {},
    }
    if len(indices):
        report["times_us"] = {
            "mean": float(times.mean()) * 1e6,
            "min": float(times.min()) * 1e6,
            "max": float(times.max()) * 1e6,
        }
    codes = store.grid.axis_codes_for_indices(indices)
    for name, values in store.grid.axes.items():
        if slices and name in slices:
            continue
        groups = []
        axis_codes = codes[name]
        for code, value in enumerate(values):
            mask = axis_codes == code
            n = int(mask.sum())
            if not n:
                continue
            selected = times[mask]
            groups.append(
                {
                    "value": value,
                    "n": n,
                    "mean_us": float(selected.mean()) * 1e6,
                    "min_us": float(selected.min()) * 1e6,
                    "max_us": float(selected.max()) * 1e6,
                }
            )
        report["axes"][name] = groups
    return report


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

#: Spec fields that provably never enter the model arithmetic, per
#: kind — an axis over one of these cannot break the columns fast path.
_IGNORABLE_AXES = {
    KIND_BENCH: {
        "iterations", "warmup", "seed", "verify", "max_retries",
        "ci_fraction", "gaussian_epsilon", "gaussian_delta",
    },
    KIND_PATTERN: {"iterations", "warmup", "seed"},
}


def _fast_axes_ok(grid: ScenarioGrid) -> bool:
    """True when every axis is either a model input the column kernel
    accepts or a field the model provably ignores."""
    from ..model.vector import BENCH_COLUMN_FIELDS, PATTERN_COLUMN_FIELDS

    fields = (
        BENCH_COLUMN_FIELDS
        if grid.kind == KIND_BENCH
        else PATTERN_COLUMN_FIELDS
    )
    return set(grid.axes) <= set(fields) | _IGNORABLE_AXES[grid.kind]


def _bench_fast_columns(
    grid: ScenarioGrid, start: int, stop: int
) -> List[list]:
    """The analytic-bench fast path: grid indices -> parameter columns
    -> vectorized kernel -> one times column, no spec objects anywhere."""
    import numpy as np

    from ..model.vector import BENCH_COLUMN_FIELDS, bench_times_from_columns
    from ..mpi import Cvars
    from ..net import MELUXINA

    with span("campaign.decode"):
        indices = np.arange(start, stop, dtype=np.int64)
        # The approach column is factorized straight from the grid
        # digits: no string materialization or hashing over the chunk.
        columns = grid.kernel_columns(
            indices, BENCH_COLUMN_FIELDS, categorical=("approach",)
        )
    params = grid.base.get("params", MELUXINA)
    cvars = grid.base.get("cvars") or Cvars()
    times = bench_times_from_columns(
        params,
        cvars.num_vcis,
        cvars.vci_method,
        cvars.part_aggr_size,
        columns,
        len(indices),
    )
    # Hand the kernel's array straight to the store: the segment
    # writer serializes it whole (JSON dump or raw tobytes), so no
    # per-point Python object ever materializes on this path.
    return [times]


def _pattern_fast_columns(
    grid: ScenarioGrid, start: int, stop: int
) -> List[list]:
    """The analytic-pattern fast path: grid indices -> decoded axis
    columns (pattern/approach/noise factorized from the grid digits)
    -> topology-cached vectorized kernel -> three columns, with no
    per-point ``scenario_at``/config objects anywhere."""
    import numpy as np

    from ..model.vector import (
        PATTERN_COLUMN_FIELDS,
        pattern_times_from_columns,
    )
    from ..mpi import Cvars
    from ..net import MELUXINA

    with span("campaign.decode"):
        indices = np.arange(start, stop, dtype=np.int64)
        columns = grid.kernel_columns(
            indices,
            PATTERN_COLUMN_FIELDS,
            categorical=("pattern", "approach", "noise"),
        )
    params = grid.base.get("params", MELUXINA)
    cvars = grid.base.get("cvars") or Cvars()
    batch = pattern_times_from_columns(
        params,
        cvars.num_vcis,
        cvars.part_aggr_size,
        columns,
        len(indices),
    )
    return batch.store_columns()


def _pattern_columns(grid: ScenarioGrid, start: int, stop: int) -> List[list]:
    """Analytic pattern chunk, per-point config fallback (axes outside
    the column kernel): configs -> vectorized kernel -> columns."""
    from ..model.vector import pattern_batch

    with span("campaign.materialize"):
        configs = [grid.scenario_at(i).spec for i in range(start, stop)]
    return pattern_batch(configs).store_columns()


def _chunk_ranges(
    store: CampaignStore,
    chunk_points: int,
    limit: Optional[int],
    within: Optional[Sequence[Tuple[int, int]]] = None,
) -> Iterator[Tuple[int, int]]:
    """Yield [start, stop) chunk ranges over the missing points, capped
    at ``limit`` points total.  ``within`` restricts the walk to the
    intersection of the missing ranges and the given ranges — a shard
    executes only its assigned slabs, resume still skips whatever any
    writer already covered."""
    budget = limit if limit is not None else store.n_points
    todo = store.missing_ranges()
    if within is not None:
        todo = _intersect_ranges(todo, _merge_ranges(within))
    for range_start, range_stop in todo:
        for start in range(range_start, range_stop, chunk_points):
            if budget <= 0:
                return
            stop = min(start + chunk_points, range_stop, start + budget)
            budget -= stop - start
            yield start, stop


def run_campaign(
    store: CampaignStore,
    jobs: int = 1,
    chunk_points: Optional[int] = None,
    limit: Optional[int] = None,
    pool: str = "auto",
    submit_ahead: Optional[int] = None,
    async_write: Optional[bool] = None,
    ranges: Optional[Sequence[Tuple[int, int]]] = None,
    progress=None,
) -> dict:
    """Execute a campaign's missing points, chunk by chunk.

    Each completed chunk is appended to the store before the next one
    starts (streaming: an interrupted run resumes from its segments).
    Inline (analytic) campaigns hand each chunk's columns to a
    bounded-queue **async segment writer**
    (:class:`~repro.runner.executor.AsyncSegmentWriter`) so
    encode+write overlap the next chunk's kernel evaluation; the
    writer appends FIFO on one thread, so the segments are
    byte-identical to synchronous execution (``async_write=False``
    forces the sync path; the default enables it for inline backends).
    Simulation-backed campaigns run their chunks through a bounded
    **submit-ahead pipeline**: up to ``submit_ahead`` chunks (default
    ~2x the workers, :func:`~repro.runner.planner.auto_submit_window`)
    are in flight on one persistent pool while earlier results stream
    to the store in submission order — the pool stays saturated across
    chunk boundaries, and the store bytes are identical to sequential
    execution.  ``limit`` caps the points executed by this invocation
    (useful for time-boxed sessions and the CI resume assertion).
    Returns a summary dict (points executed, chunks, wall seconds,
    points/s).  ``ranges`` restricts execution to the given [start,
    stop) grid-index slabs (the shard shape: each shard runs
    ``ranges=its slab list`` against its own store).
    """
    from collections import deque
    from contextlib import nullcontext

    from ..backends import get_backend
    from .executor import AsyncSegmentWriter, iter_chunk_results
    from .planner import (
        auto_chunk_size,
        auto_submit_window,
        auto_writer_depth,
        pool_workers,
    )
    from .scenario import result_to_dict

    grid = store.grid
    backend = get_backend(grid.backend)
    if ranges is not None:
        ranges = _merge_ranges(ranges)
        for start, stop in ranges:
            if not (0 <= start < stop <= store.n_points):
                raise ValueError(
                    f"range [{start}, {stop}) outside the grid "
                    f"[0, {store.n_points})"
                )
        full_missing = store.missing_ranges()
        missing = _intersect_ranges(full_missing, ranges)
    else:
        full_missing = missing = store.missing_ranges()
    n_missing_total = sum(stop - start for start, stop in missing)
    n_missing = n_missing_total
    if limit is not None:
        n_missing = min(n_missing, limit)
    # One pool decision for the whole campaign (the pipeline spans
    # every chunk, so the per-batch auto policy cannot re-decide).
    workers, use_pool = pool_workers(n_missing, jobs, pool)
    if chunk_points is None:
        # A chunk is one pool task now, so sizing must leave at least
        # a few chunks per worker (auto_chunk_size's rule) or a small
        # campaign would keep most of the pool idle; its cap bounds
        # how long results can sit before their ordered store write.
        chunk_points = (
            DEFAULT_INLINE_CHUNK
            if backend.inline
            else auto_chunk_size(n_missing, workers)
        )
    chunk_points = max(1, int(chunk_points))
    fast = (
        backend.inline
        and grid.backend == "analytic"
        and _fast_axes_ok(grid)
    )

    # Planner decisions become observables: the profile report shows
    # them beside the stage attribution they produced.
    if telemetry.active_registry() is not None:
        telemetry.gauge("planner.workers", workers)
        telemetry.gauge("planner.use_pool", int(use_pool))
        telemetry.gauge("planner.chunk_points", chunk_points)
        telemetry.gauge("campaign.fast_path", int(fast))

    t0 = time.perf_counter()
    executed = 0
    cached = 0
    chunks = 0
    # Progress coverage is tracked locally, not re-read from the store:
    # under the async writer the index is the writer thread's to touch,
    # and a mid-run ``n_completed`` would race its index writes.
    covered = store.n_points - sum(
        stop - start for start, stop in full_missing
    )

    def note_chunk(points: int) -> None:
        nonlocal chunks
        chunks += 1
        telemetry.count("campaign.chunks")
        telemetry.count("campaign.points", points)
        if progress is not None:
            progress(
                f"[campaign] {covered}/{store.n_points} "
                f"points ({chunks} chunk(s) this run)"
            )

    use_async = (
        backend.inline if async_write is None else bool(async_write)
    ) and backend.inline
    if telemetry.active_registry() is not None:
        telemetry.gauge("store.writer.async", int(use_async))

    run_span = span("campaign.run", backend=grid.backend, kind=grid.kind)
    with run_span:
        if backend.inline:
            writer_ctx = (
                AsyncSegmentWriter(depth=auto_writer_depth(chunk_points))
                if use_async
                else nullcontext()
            )
            with writer_ctx as writer:

                def submit(fn, *fn_args, **fn_kwargs):
                    if writer is not None:
                        writer.submit(fn, *fn_args, **fn_kwargs)
                    else:
                        fn(*fn_args, **fn_kwargs)

                for start, stop in _chunk_ranges(
                    store, chunk_points, limit, within=ranges
                ):
                    if fast and grid.kind == KIND_BENCH:
                        submit(
                            store.append_columns,
                            start, stop,
                            _bench_fast_columns(grid, start, stop),
                            ENC_BENCH_COLS, backend=grid.backend,
                        )
                    elif (
                        grid.kind == KIND_PATTERN
                        and grid.backend == "analytic"
                    ):
                        columns_for = (
                            _pattern_fast_columns if fast else _pattern_columns
                        )
                        submit(
                            store.append_columns,
                            start, stop, columns_for(grid, start, stop),
                            ENC_PATTERN_COLS, backend=grid.backend,
                        )
                    else:
                        with span("campaign.materialize"):
                            scenarios = [
                                grid.scenario_at(i)
                                for i in range(start, stop)
                            ]
                        results = backend.run_batch(scenarios)
                        rows = [
                            [
                                start + j,
                                result_to_dict(scenarios[j], results[j]),
                            ]
                            for j in range(len(scenarios))
                        ]
                        submit(
                            store.append_chunk,
                            rows, ENC_RESULT, [(start, stop)],
                            backend=grid.backend,
                        )
                    executed += stop - start
                    covered += stop - start
                    note_chunk(stop - start)
        else:
            window = (
                auto_submit_window(workers)
                if submit_ahead is None
                else max(1, int(submit_ahead))
            )
            telemetry.gauge("planner.submit_window", window)
            # Chunk metadata travels beside the payload stream: the
            # generator appends each chunk's meta as it is submitted,
            # the ordered consumer pops it back — the deque never holds
            # more than the in-flight window.
            meta_q: deque = deque()

            def payload_chunks():
                for start, stop in _chunk_ranges(
                    store, chunk_points, limit, within=ranges
                ):
                    with span("campaign.materialize"):
                        scenarios = [
                            grid.scenario_at(i) for i in range(start, stop)
                        ]
                        rows: List[list] = []
                        cold: List[int] = []
                        for j, scenario in enumerate(scenarios):
                            warm = store.load_dict(scenario)
                            if warm is not None:
                                rows.append([start + j, warm])
                            else:
                                cold.append(j)
                        payloads = [scenarios[j].to_dict() for j in cold]
                    meta_q.append((start, stop, rows, cold))
                    yield payloads

            for result_dicts in iter_chunk_results(
                payload_chunks(), workers, window, use_pool
            ):
                start, stop, rows, cold = meta_q.popleft()
                for j, result_dict in zip(cold, result_dicts):
                    rows.append([start + j, result_dict])
                rows.sort(key=lambda row: row[0])
                store.append_chunk(
                    rows, ENC_RESULT, [(start, stop)], backend=grid.backend
                )
                cached += (stop - start) - len(cold)
                executed += len(cold)
                covered += stop - start
                telemetry.count("campaign.points_cached", (stop - start) - len(cold))
                note_chunk(len(cold))

    wall = time.perf_counter() - t0
    return {
        "executed": executed,
        "cached": cached,
        "chunks": chunks,
        "wall_s": wall,
        "points_per_s": (executed / wall) if wall > 0 else None,
        "completed": store.n_completed,
        "n_points": store.n_points,
    }
