"""Content-addressed JSON result cache (the ``--store``/``--resume`` feed).

Layout: one file per scenario under the store root, sharded by hash
prefix to keep directories small::

    <root>/
      <kind>/
        <hh>/<content_hash>.json    # {"schema", "scenario", "result"}

The key is :meth:`Scenario.content_hash` — a SHA-256 over the canonical
serialized spec, which includes every code-relevant parameter (machine
model, cvars, seed, iteration counts) plus the scenario schema version.
Two runs with any differing parameter land in different files; re-runs
of an identical scenario hit the cache.  Records store raw samples only;
statistics are recomputed on load.

Writes are atomic (temp file + ``os.replace``), so a store shared by
parallel workers or interrupted mid-run never holds a torn record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .io import atomic_write_text, write_jsonl
from .scenario import Scenario, result_from_dict, result_to_dict

__all__ = ["ResultStore"]

_STORE_SCHEMA = "repro.runner.store/v1"


class ResultStore:
    """A directory of content-addressed scenario results."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- addressing ----------------------------------------------------------
    def path_for(self, scenario: Scenario) -> Path:
        digest = scenario.content_hash()
        return self.root / scenario.kind / digest[:2] / f"{digest}.json"

    def __contains__(self, scenario: Scenario) -> bool:
        return self.path_for(scenario).is_file()

    # -- records -------------------------------------------------------------
    def put_dict(self, scenario: Scenario, result_dict: dict) -> Path:
        """Record a serialized result for ``scenario`` (atomic write,
        :func:`~repro.runner.io.atomic_write_text`: concurrent writers
        sharing one store never tear a record)."""
        target = self.path_for(scenario)
        payload = {
            "schema": _STORE_SCHEMA,
            "scenario": scenario.to_dict(),
            "result": result_dict,
        }
        atomic_write_text(
            target, json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
        return target

    def put(self, scenario: Scenario, result: Any) -> Path:
        """Record a native result object for ``scenario``."""
        return self.put_dict(scenario, result_to_dict(scenario, result))

    def get_dict(self, scenario: Scenario) -> dict:
        """The serialized result recorded for ``scenario``.

        Raises :class:`KeyError` when the scenario has no record.
        """
        path = self.path_for(scenario)
        if not path.is_file():
            raise KeyError(scenario.content_hash())
        payload = json.loads(path.read_text())
        if payload.get("schema") != _STORE_SCHEMA:
            raise ValueError(
                f"unrecognized store schema {payload.get('schema')!r} "
                f"in {path}"
            )
        return payload["result"]

    def load_dict(self, scenario: Scenario) -> Any:
        """Like :meth:`get_dict`, but ``None`` when the record is absent
        *or* unreadable (torn JSON, foreign schema) — the tolerant read
        the resume path uses to treat bad records as cache misses."""
        try:
            return self.get_dict(scenario)
        except (KeyError, ValueError):
            return None

    def get(self, scenario: Scenario) -> Any:
        """The native result object recorded for ``scenario``."""
        return result_from_dict(scenario, self.get_dict(scenario))

    # -- enumeration ---------------------------------------------------------
    def records(self) -> Iterator[Tuple[Scenario, Any]]:
        """Iterate ``(scenario, result)`` over every stored record,
        sorted by path for determinism.

        Records that no longer round-trip (torn JSON, foreign schema,
        stale scenario version) are skipped — the same tolerance the
        resume path applies; ``stats()`` surfaces them and ``prune()``
        reclaims them.
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*/*.json")):
            record = self._load_record(path)
            if record is not None:
                yield record

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*/*.json"))

    # -- maintenance ---------------------------------------------------------
    def stats(self) -> dict:
        """Store health summary: record counts per (kind, backend),
        total size on disk, and records that no longer round-trip
        (torn JSON, foreign schema, stale scenario version)."""
        per_group: Dict[str, int] = {}
        broken: List[str] = []
        total_bytes = 0
        n_records = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*/*/*.json")):
                n_records += 1
                total_bytes += path.stat().st_size
                record = self._load_record(path)
                if record is None:
                    broken.append(str(path.relative_to(self.root)))
                    continue
                scenario = record[0]
                key = f"{scenario.kind}/{scenario.backend}"
                per_group[key] = per_group.get(key, 0) + 1
        return {
            "root": str(self.root),
            "records": n_records,
            "total_bytes": total_bytes,
            "per_kind_backend": dict(sorted(per_group.items())),
            "broken": broken,
        }

    def prune(self, broken: Optional[List[str]] = None) -> List[Path]:
        """Delete records whose scenario no longer round-trips.

        Extends the executor's torn-record tolerance (bad records read
        as cache misses) with reclamation: stale schema versions, torn
        writes, and foreign files are removed.  Returns the deleted
        paths.  Pass ``stats()["broken"]`` as ``broken`` to skip a
        second full store scan.
        """
        removed: List[Path] = []
        if not self.root.is_dir():
            return removed
        if broken is not None:
            for rel in broken:
                path = self.root / rel
                if path.is_file():
                    path.unlink()
                    removed.append(path)
            return removed
        for path in sorted(self.root.glob("*/*/*.json")):
            if self._load_record(path) is None:
                path.unlink()
                removed.append(path)
        return removed

    def _load_record(self, path: Path):
        """``(scenario, result)`` for one record file, or ``None`` when
        it cannot be reconstructed exactly (any parse/validation
        failure counts) — one read, one parse, one deserialization."""
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != _STORE_SCHEMA:
                return None
            scenario = Scenario.from_dict(payload["scenario"])
            return scenario, result_from_dict(scenario, payload["result"])
        except Exception:
            return None

    # -- interop -------------------------------------------------------------
    def iter_payloads(self) -> Iterator[Tuple[str, dict, dict]]:
        """Yield ``(content_hash, scenario_dict, result_dict)`` over
        every readable record, sorted by path — the raw serialized form,
        without reconstructing native objects (the migration/export
        feed).  Unreadable records are skipped, like :meth:`records`."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*/*.json")):
            try:
                payload = json.loads(path.read_text())
                if payload.get("schema") != _STORE_SCHEMA:
                    continue
                scenario = Scenario.from_dict(payload["scenario"])
            except Exception:
                continue
            yield scenario.content_hash(), payload["scenario"], payload[
                "result"
            ]

    def export_jsonl(self, target) -> int:
        """Dump every readable record as JSON-lines ``{"hash",
        "scenario", "result"}`` to a path or file object
        (:func:`~repro.runner.io.write_jsonl`); returns the record
        count (the ``python -m repro store --export jsonl`` backend)."""
        return write_jsonl(
            target,
            (
                {"hash": digest, "scenario": scenario, "result": result}
                for digest, scenario, result in self.iter_payloads()
            ),
        )

    def pattern_sweep(self, backend: str = "sim"):
        """Stored app-pattern records of one ``backend`` as a
        :class:`~repro.apps.sweep.PatternSweep` (the ``BENCH_apps.json``
        view of the store).

        The filter matters: a :class:`PatternSweep` keys on the config
        alone, so mixing backends would let whichever record sorts last
        silently overwrite the other.
        """
        from ..apps.sweep import PatternSweep

        sweep = PatternSweep()
        for scenario, result in self.records():
            if scenario.kind == "pattern" and scenario.backend == backend:
                sweep.add(result)
        return sweep

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        return f"<ResultStore {str(self.root)!r} records={len(self)}>"
