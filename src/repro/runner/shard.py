"""Sharded campaign execution: independent writers, one verified merge.

A campaign grid is pure index arithmetic, so nothing ties its execution
to one process: :func:`~repro.runner.planner.shard_plan` splits the
missing points into contiguous slabs, each shard runs the ordinary
:func:`~repro.runner.campaign.run_campaign` scoped to its slabs
(``ranges=``) against **its own store directory** whose grid hash equals
the target's, and a merge/adopt step stitches the shard segments into
the target store afterwards.  Three properties make that safe:

* **collision-free segment names** — every shard store carries a writer
  token (``seg-<token>-NNNNNN``), so adopted segments from different
  shards can never claim the same file name;
* **self-describing segments** — each segment header records the
  campaign grid hash, schema, encoding, and coverage ranges, so the
  merge verifies provenance per file *before* moving anything and the
  target index is rebuilt from headers alone afterwards;
* **range arithmetic** — shard coverage is checked disjoint against the
  target and against every other shard
  (:func:`~repro.runner.campaign._intersect_ranges`), and post-merge
  coverage is asserted with
  :func:`~repro.runner.campaign._subtract_ranges`.

Two shapes:

* **single node** — ``campaign run --shards N`` (or
  :func:`run_sharded`) drives N local shard subprocesses and merges at
  the end: inline analytic campaigns get their first multi-core kernel
  scaling, since each subprocess evaluates its slab's kernel on its own
  CPU;
* **multi machine** — ``campaign shard run --root DIR SPEC --shard
  I/N`` anywhere, rsync the shard directories back, ``campaign shard
  merge TARGET DIR...`` once.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .. import telemetry
from ..telemetry import span
from .campaign import (
    COMPRESSION_NONE,
    CampaignStore,
    _intersect_ranges,
    _merge_ranges,
    _subtract_ranges,
    run_campaign,
)
from .planner import available_cpus, shard_plan
from .scenario import ScenarioGrid

__all__ = [
    "format_ranges",
    "merge_shards",
    "parse_ranges",
    "parse_shard",
    "run_shard",
    "run_sharded",
    "shard_token",
]


def shard_token(index: int, count: int) -> str:
    """The writer token (and directory name) of shard ``index`` of
    ``count`` — 1-based, matching the ``--shard I/N`` CLI form."""
    if not (1 <= index <= count):
        raise ValueError(f"shard index {index} outside 1..{count}")
    return f"s{index:03d}of{count:03d}"


def parse_shard(text: str) -> Tuple[int, int]:
    """``"I/N"`` -> ``(index, count)``, 1-based, validated."""
    try:
        index_s, _, count_s = text.partition("/")
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(
            f"bad shard spec {text!r} (expected I/N, e.g. 2/4)"
        ) from None
    if count < 1 or not (1 <= index <= count):
        raise ValueError(
            f"bad shard spec {text!r}: index must be in 1..count"
        )
    return index, count


def format_ranges(ranges: Sequence[Tuple[int, int]]) -> str:
    """[start, stop) ranges -> the ``--ranges`` form ``"s-e,s-e"``."""
    return ",".join(f"{int(s)}-{int(e)}" for s, e in ranges)


def parse_ranges(text: str) -> List[Tuple[int, int]]:
    """``"s-e,s-e"`` -> [start, stop) ranges (merged, validated)."""
    ranges: List[Tuple[int, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        start_s, sep, stop_s = part.partition("-")
        try:
            if not sep:
                raise ValueError
            start, stop = int(start_s), int(stop_s)
        except ValueError:
            raise ValueError(
                f"bad range {part!r} (expected START-STOP, half-open)"
            ) from None
        if stop <= start or start < 0:
            raise ValueError(f"bad range {part!r}: need 0 <= start < stop")
        ranges.append((start, stop))
    if not ranges:
        raise ValueError(f"no ranges in {text!r}")
    return _merge_ranges(ranges)


def run_shard(
    root: str | Path,
    grid: ScenarioGrid,
    index: int,
    count: int,
    ranges: Optional[Sequence[Tuple[int, int]]] = None,
    compression: str = COMPRESSION_NONE,
    jobs: int = 1,
    chunk_points: Optional[int] = None,
    limit: Optional[int] = None,
    pool: str = "auto",
    submit_ahead: Optional[int] = None,
    async_write: Optional[bool] = None,
    progress=None,
) -> dict:
    """Execute one shard of ``grid`` into its own store at ``root``.

    The shard store is a full campaign root for the *whole* grid (same
    grid hash as the target — the property the merge verifies), with a
    writer token naming its segments and shard provenance in its
    header; only the shard's assigned ``ranges`` are executed.  When
    ``ranges`` is omitted, shard ``index`` of :func:`shard_plan` over
    the full grid is assumed — the multi-machine shape, where every
    machine splits an *empty* target identically.  A driver merging
    into a partially-complete target passes explicit ranges instead.

    Resumable like any campaign: re-running a shard executes only its
    still-missing points.
    """
    token = shard_token(index, count)
    if ranges is None:
        ranges = shard_plan(len(grid), count)[index - 1]
    ranges = _merge_ranges(ranges)
    store = CampaignStore.create(
        root,
        grid,
        compression=compression,
        writer_token=token,
        shard={"index": index, "count": count, "ranges": ranges},
    )
    summary = run_campaign(
        store,
        jobs=jobs,
        chunk_points=chunk_points,
        limit=limit,
        pool=pool,
        submit_ahead=submit_ahead,
        async_write=async_write,
        ranges=ranges,
        progress=progress,
    )
    assigned = sum(stop - start for start, stop in ranges)
    done = store.completed_ranges()
    remaining = []
    for start, stop in ranges:
        remaining.extend(_subtract_ranges(start, stop, done))
    return dict(
        summary,
        shard={
            "index": index,
            "count": count,
            "token": token,
            "root": str(store.root),
            "ranges": [[s, e] for s, e in ranges],
            "assigned": assigned,
            "remaining": sum(e - s for s, e in remaining),
        },
    )


def _shard_segment_files(shard_store: CampaignStore) -> List[Tuple[Path, dict]]:
    """A shard's adoptable ``(path, index_entry)`` pairs, validated."""
    index = shard_store._index()
    if index["loose"]:
        raise ValueError(
            f"shard {shard_store.root} holds loose (v1-migrated) rows; "
            f"only range-covered segments can be adopted"
        )
    return [
        (shard_store.root / entry["file"], entry)
        for entry in index["segments"]
    ]


def merge_shards(
    target: CampaignStore | str | Path,
    shard_roots: Sequence[str | Path],
    link: bool = False,
) -> dict:
    """Adopt shard stores' segments into ``target`` (verified).

    Verification happens *before* anything moves:

    * every shard root must be a campaign store whose grid hash equals
      the target's (``ValueError`` on mismatch — a shard of a different
      grid can never be adopted);
    * every segment header must re-validate against the target
      (schema + campaign hash) — a doctored or foreign segment rejects
      the merge rather than being silently ignored;
    * shard coverage must be disjoint from the target's completed
      ranges and from every other shard's coverage (overlap means two
      writers claimed the same points — latest-wins would silently
      shadow one of them, so the merge refuses);
    * no incoming file name may already exist in the target (writer
      tokens make cross-shard collisions impossible; this guards
      against adopting the same shard twice or colliding with legacy
      un-tokened segments).

    Then every shard segment is moved (``link=True`` hard-links
    instead, for same-filesystem adoption that leaves the shard store
    intact), ``index.json`` is rebuilt **once** from the segment
    headers, and the post-merge coverage is asserted equal to the
    union of the target's prior coverage and every shard's.
    """
    store = (
        target
        if isinstance(target, CampaignStore)
        else CampaignStore.open(target)
    )
    t0 = time.perf_counter()
    shards: List[Tuple[CampaignStore, List[Tuple[Path, dict]]]] = []
    for shard_root in shard_roots:
        shard_store = CampaignStore.open(shard_root)
        if shard_store.header["grid_hash"] != store.header["grid_hash"]:
            raise ValueError(
                f"shard {shard_store.root} holds grid "
                f"{shard_store.header['grid_hash'][:12]}, target holds "
                f"{store.header['grid_hash'][:12]} — refusing to merge "
                f"different campaigns"
            )
        shards.append((shard_store, _shard_segment_files(shard_store)))

    with span("campaign.shard.merge", shards=len(shards)):
        # Coverage must stay single-writer-per-point: start from the
        # target's merged coverage and fold each shard in, refusing on
        # any intersection (target overlap and shard-shard overlap are
        # the same check).
        combined = store.completed_ranges()
        expected = list(combined)
        for shard_store, files in shards:
            coverage = _merge_ranges(
                [r for _, entry in files for r in entry["ranges"]]
            )
            clash = _intersect_ranges(combined, coverage)
            if clash:
                raise ValueError(
                    f"shard {shard_store.root} coverage overlaps "
                    f"already-claimed points at {clash[:3]}"
                    f"{'...' if len(clash) > 3 else ''} — every point "
                    f"must have exactly one writer"
                )
            combined = _merge_ranges(combined + coverage)
        expected = combined

        # Per-file provenance: the header must re-validate against the
        # *target* (schema + campaign hash), and the name must be free.
        moves: List[Tuple[Path, Path]] = []
        for shard_store, files in shards:
            for path, entry in files:
                if store._segment_header(path) is None:
                    raise ValueError(
                        f"segment {path} fails target validation "
                        f"(schema or campaign hash mismatch) — "
                        f"refusing to adopt it"
                    )
                dest = store.root / entry["file"]
                if dest.exists():
                    raise ValueError(
                        f"segment name {entry['file']!r} already exists "
                        f"in {store.root} — was this shard already "
                        f"merged?"
                    )
                moves.append((path, dest))

        (store.root / "segments").mkdir(parents=True, exist_ok=True)
        for src, dest in moves:
            if link:
                os.link(src, dest)
            else:
                shutil.move(str(src), str(dest))

    # One index rebuild covers every adopted segment (headers are
    # authoritative); its write carries the usual store.index span.
    store.rebuild_index()
    after = store.completed_ranges()
    leftover = []
    for start, stop in expected:
        leftover.extend(_subtract_ranges(start, stop, after))
    if leftover:
        raise RuntimeError(
            f"post-merge coverage hole at {leftover[:3]} — the rebuilt "
            f"index does not cover every adopted range"
        )
    if telemetry.active_registry() is not None:
        telemetry.count("shard.segments_adopted", len(moves))
        telemetry.count("shard.stores_merged", len(shards))
    return {
        "shards": len(shards),
        "segments_adopted": len(moves),
        "points": sum(stop - start for start, stop in after),
        "completed": store.n_completed,
        "linked": bool(link),
        "wall_s": time.perf_counter() - t0,
    }


def _repro_src_dir() -> Path:
    """The directory that must be on a child's PYTHONPATH."""
    return Path(__file__).resolve().parents[2]


def _shard_command(
    python: str,
    spec_path: Path,
    shard_root: Path,
    index: int,
    count: int,
    ranges: Sequence[Tuple[int, int]],
    jobs: int,
    chunk_points: Optional[int],
    compression: str,
    metrics: bool,
) -> List[str]:
    cmd = [
        python, "-m", "repro", "campaign", "shard", "run",
        str(spec_path),
        "--root", str(shard_root),
        "--shard", f"{index}/{count}",
        "--ranges", format_ranges(ranges),
        "--jobs", str(jobs),
    ]
    if chunk_points is not None:
        cmd += ["--chunk", str(chunk_points)]
    if compression == "gzip":
        cmd.append("--compress")
    elif compression == "binary":
        cmd.append("--binary")
    if metrics:
        cmd.append("--metrics")
    return cmd


def run_sharded(
    store: CampaignStore,
    n_shards: int = 0,
    jobs: int = 1,
    chunk_points: Optional[int] = None,
    keep_shards: bool = False,
    link: bool = False,
    shard_metrics: bool = False,
    python: Optional[str] = None,
    progress=None,
) -> dict:
    """Drive ``n_shards`` local shard subprocesses over ``store``'s
    missing points and merge their segments back — the single-node
    multi-core shape.

    Each shard is a fresh ``python -m repro campaign shard run``
    process writing into ``<root>/shards/<token>/`` (collision-free by
    writer token), so inline analytic campaigns — one thread per
    process by construction — scale across cores.  The shard ranges
    are computed from the target's *actual* missing ranges, so a
    partially-complete target resumes correctly.  ``n_shards=0`` uses
    one shard per available CPU
    (:func:`~repro.runner.planner.available_cpus`); ``jobs`` is passed
    through to each shard (simulation-backed campaigns may want a pool
    *inside* each shard, analytic shards should keep ``jobs=1``).

    ``shard_metrics=True`` has every shard write its own metrics JSONL,
    relocated to ``<root>/metrics-<token>.jsonl`` after the merge —
    per-shard provenance for ``campaign profile``.  Shard stores are
    deleted after a successful merge unless ``keep_shards``; on any
    shard failure nothing is merged and the shard stores stay on disk
    for diagnosis (re-running resumes them).
    """
    if n_shards < 0:
        raise ValueError(f"n_shards must be >= 0, got {n_shards}")
    n_shards = n_shards or available_cpus()
    python = python or sys.executable
    grid = store.grid
    missing = store.missing_ranges()
    plans = shard_plan(store.n_points, n_shards, completed=store.completed_ranges())
    work = [
        (i + 1, plan) for i, plan in enumerate(plans) if plan
    ]
    t0 = time.perf_counter()
    run_span = span(
        "campaign.run", backend=grid.backend, kind=grid.kind
    )
    with run_span:
        if not work:
            return {
                "executed": 0,
                "cached": 0,
                "chunks": 0,
                "wall_s": time.perf_counter() - t0,
                "points_per_s": None,
                "completed": store.n_completed,
                "n_points": store.n_points,
                "shards": [],
                "merge": None,
            }

        spec_path = store.root / "shard-grid.json"
        spec_path.write_text(
            json.dumps(grid.to_dict(), sort_keys=True, indent=1) + "\n"
        )
        env = dict(os.environ)
        src_dir = str(_repro_src_dir())
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )

        shards_dir = store.root / "shards"
        shards_dir.mkdir(exist_ok=True)
        procs = []
        shard_infos = []
        with span("campaign.shard.run", shards=len(work)):
            for index, ranges in work:
                token = shard_token(index, n_shards)
                shard_root = shards_dir / token
                cmd = _shard_command(
                    python, spec_path, shard_root, index, n_shards,
                    ranges, jobs, chunk_points, store.compression,
                    shard_metrics,
                )
                procs.append(
                    (
                        index,
                        token,
                        shard_root,
                        subprocess.Popen(
                            cmd,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE,
                            text=True,
                            env=env,
                        ),
                    )
                )
            failures = []
            for index, token, shard_root, proc in procs:
                out, err = proc.communicate()
                points = sum(stop - start for start, stop in plans[index - 1])
                if proc.returncode != 0:
                    failures.append(
                        f"shard {index}/{n_shards} exited "
                        f"{proc.returncode}: {err.strip()[-500:]}"
                    )
                    continue
                shard_infos.append(
                    {
                        "index": index,
                        "token": token,
                        "root": str(shard_root),
                        "points": points,
                    }
                )
                if progress is not None:
                    progress(
                        f"[shard {index}/{n_shards}] {points} point(s) done"
                    )
        if failures:
            raise RuntimeError(
                "sharded run failed (shard stores kept for resume):\n"
                + "\n".join(failures)
            )

        merge_summary = merge_shards(
            store, [info["root"] for info in shard_infos], link=link
        )
        for info in shard_infos:
            metrics_src = Path(info["root"]) / "metrics.jsonl"
            if metrics_src.is_file():
                dest = store.root / f"metrics-{info['token']}.jsonl"
                shutil.move(str(metrics_src), str(dest))
                info["metrics"] = str(dest)
        if not keep_shards and not link:
            for info in shard_infos:
                shutil.rmtree(info["root"], ignore_errors=True)
            try:
                shards_dir.rmdir()
            except OSError:
                pass
            spec_path.unlink(missing_ok=True)

    executed = sum(stop - start for start, stop in missing)
    wall = time.perf_counter() - t0
    if telemetry.active_registry() is not None:
        telemetry.count("campaign.points", executed)
        telemetry.gauge("shard.count", len(work))
    return {
        "executed": executed,
        "cached": 0,
        "chunks": len(work),
        "wall_s": wall,
        "points_per_s": (executed / wall) if wall > 0 else None,
        "completed": store.n_completed,
        "n_points": store.n_points,
        "shards": shard_infos,
        "merge": merge_summary,
    }
