"""Chunked scenario fan-out with deterministic, serial-identical results.

Every scenario builds its own :class:`~repro.mpi.world.MPIWorld` and
shares no state with its neighbours, so a grid is embarrassingly
parallel.  The :class:`ParallelExecutor` asks the planner
(:mod:`repro.runner.planner`) to partition a batch into **chunks** and
fans the pooled chunks out across a ``multiprocessing`` pool — one pool
task per chunk, not per point, so fork/pickle/IPC overhead amortizes
over many scenarios.  Results stream back chunk by chunk (store writes
land incrementally, in completion order) and are reassembled **in
submission order**; both the serial and the parallel path move results
through the same serialized form
(:func:`~repro.runner.scenario.result_to_dict`) — so the output of
``jobs=N`` is byte-identical to ``jobs=1``.

Dispatch is backend-aware: scenarios whose backend is *inline* (the
analytic model — microseconds per point) never go to the pool; the
whole inline sub-batch is handed to
:meth:`~repro.backends.base.Backend.run_batch` in one call, which the
analytic backend evaluates through the vectorized model kernel.  Only
simulation-backed scenarios are worth worker processes — and only when
the grid is big enough: the default ``pool="auto"`` policy falls back
to in-process serial execution for tiny grids and single-CPU machines,
where the pool's fork overhead cannot pay for itself (the historical
``BENCH_runner.json`` regression).

With a :class:`~repro.runner.store.ResultStore` attached, computed
results are recorded chunk-by-chunk and — under ``resume=True`` —
already-recorded scenarios are served from the store without running a
single simulation.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

from .. import telemetry
from ..telemetry import span
from .planner import plan_execution
from .scenario import (
    Scenario,
    execute,
    result_from_dict,
    result_to_dict,
    scenario_for,
)
from .store import ResultStore

__all__ = [
    "AsyncSegmentWriter",
    "ParallelExecutor",
    "RunReport",
    "iter_chunk_results",
    "run_scenarios",
    "run_specs",
]


def default_jobs() -> int:
    """The default worker count: one per CPU this process may use.

    Respects cgroup / ``taskset`` affinity masks via
    :func:`~repro.runner.planner.available_cpus`, so containers and CI
    runners with restricted CPU sets do not over-fork.
    """
    from .planner import available_cpus

    return available_cpus()


def _execute_payload(payload: dict) -> dict:
    """Pool worker (one point): scenario dict in, result dict out."""
    scenario = Scenario.from_dict(payload)
    with span("executor.worker.execute"):
        result = execute(scenario)
    telemetry.count("executor.worker.points")
    return result_to_dict(scenario, result)


def _execute_chunk(payloads: List[dict]) -> List[dict]:
    """Pool worker (one chunk): scenario dicts in, result dicts out.

    Module-level (picklable) and dict-in/dict-out so that exactly the
    serialized representation crosses the process boundary — once per
    chunk instead of once per point.
    """
    return [_execute_payload(payload) for payload in payloads]


def _worker_telemetry_init() -> None:
    """Pool initializer: give each worker its own enabled registry, so
    worker-side spans and counters accumulate locally and ship back to
    the parent as per-chunk snapshot deltas."""
    telemetry.set_registry(telemetry.MetricsRegistry())


def _execute_chunk_metered(payloads: List[dict]):
    """The metered twin of :func:`_execute_chunk`: returns
    ``(result_dicts, metrics_snapshot)`` — the worker's telemetry delta
    rides the existing chunk-result channel back to the parent, which
    merges it (:meth:`~repro.telemetry.MetricsRegistry.merge_snapshot`).
    """
    results = _execute_chunk(payloads)
    registry = telemetry.active_registry()
    snapshot = (
        registry.snapshot_and_reset() if registry is not None else None
    )
    return results, snapshot


class AsyncSegmentWriter:
    """A bounded-queue writer thread: store appends overlap compute.

    The campaign profile attributes half the analytic fast path's wall
    to ``store.encode`` + ``store.write`` — work that is serial with
    the kernel only because the chunk loop calls the store inline.
    This writer moves those calls onto one FIFO thread behind a bounded
    queue: the producer submits ``(fn, args)`` work items (already
    holding the kernel's output arrays) and immediately starts the next
    chunk's compute while the writer encodes and appends.

    Determinism: a *single* consumer thread drains the queue in
    submission order, so segment names, contents, and index updates are
    byte-identical to calling ``fn(*args)`` inline — asserted by the
    sync-vs-async store tests.  Error handling: a failed append is
    re-raised in the producer (on the next :meth:`submit` or at
    :meth:`close`), and the queue keeps draining after a failure so the
    producer can never deadlock against a full queue.

    Telemetry: the writer thread records into its *own* registry
    (:func:`~repro.telemetry.set_thread_registry` — the shared span
    stack is not thread-safe) and the owner merges the snapshot into
    the parent registry at :meth:`close`; the producer side records
    ``store.writer.stall`` spans when it blocks on a full queue and a
    ``store.writer.queue_depth`` histogram per submit.
    """

    _CLOSE = object()

    def __init__(self, depth: int = 4):
        self.depth = max(1, int(depth))
        self._queue: queue.Queue = queue.Queue(maxsize=self.depth)
        self._error: Optional[BaseException] = None
        self._parent_registry = telemetry.active_registry()
        self._registry = (
            telemetry.MetricsRegistry()
            if self._parent_registry is not None
            else None
        )
        self._thread = threading.Thread(
            target=self._run, name="segment-writer", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        if self._registry is not None:
            telemetry.set_thread_registry(self._registry)
        try:
            while True:
                item = self._queue.get()
                if item is self._CLOSE:
                    return
                if self._error is None:
                    fn, args, kwargs = item
                    try:
                        fn(*args, **kwargs)
                    except BaseException as exc:  # re-raised producer-side
                        self._error = exc
        finally:
            if self._registry is not None:
                telemetry.set_thread_registry(None)

    def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> None:
        """Enqueue ``fn(*args, **kwargs)``; blocks when ``depth`` items
        are already pending (backpressure keeps memory bounded)."""
        if self._error is not None:
            self._raise()
        item = (fn, args, kwargs)
        if self._queue.full():
            with span("store.writer.stall"):
                self._queue.put(item)
        else:
            self._queue.put(item)
        telemetry.observe("store.writer.queue_depth", self._queue.qsize())

    def close(self) -> None:
        """Drain the queue, stop the thread, merge telemetry, and
        re-raise any deferred append error.  Idempotent."""
        if self._thread.is_alive():
            self._queue.put(self._CLOSE)
        self._thread.join()
        if (
            self._registry is not None
            and self._parent_registry is not None
        ):
            self._parent_registry.merge_snapshot(
                self._registry.snapshot_and_reset()
            )
        if self._error is not None:
            self._raise()

    def _raise(self) -> None:
        error, self._error = self._error, None
        raise error

    def __enter__(self) -> "AsyncSegmentWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.close()
        else:
            # The producer is already failing: drain without masking
            # its exception with a (likely secondary) writer error.
            try:
                self.close()
            except BaseException:
                pass
        return False


def iter_chunk_results(
    payload_chunks: Iterable[List[dict]],
    workers: int,
    window: int,
    use_pool: bool = True,
):
    """Yield one result-dict list per payload chunk, **in submission
    order**, keeping up to ``window`` chunks in flight on a persistent
    pool — the campaign submit-ahead pipeline.

    The per-chunk ``executor.run()`` loop drains the pool at every
    chunk boundary (workers idle while the consumer writes its
    segment).  Here one pool spans the whole campaign: while the
    consumer handles chunk *k*, chunks *k+1 … k+window-1* are already
    executing.  Ordered delivery means the consumer's store writes are
    byte-identical to sequential execution — results move through
    exactly the serialized form ``_execute_chunk`` produces either
    way, so ``use_pool=False`` (the auto-serial fallback) differs only
    in wall-clock.

    ``payload_chunks`` is consumed lazily: a chunk's payloads are only
    materialized when a window slot frees up, so million-point
    campaigns never hold more than ``window`` chunks of scenario
    dicts.  The pool itself is created lazily, on the first non-empty
    chunk — a fully warm resume (every point served read-through, all
    payloads empty) forks no workers at all.
    """
    if not use_pool or workers <= 1:
        for payloads in payload_chunks:
            # Compute inside the span, yield outside: the consumer's
            # store write must not be charged to executor.compute.
            with span("executor.compute"):
                results = _execute_chunk(payloads)
            yield results
        return
    from collections import deque

    window = max(1, int(window))
    # One metering decision for the whole pipeline: when telemetry is
    # active, workers get their own registries (pool initializer) and
    # each chunk result carries its metrics delta back for merging.
    metered = telemetry.active_registry() is not None
    #: (ready, value) entries: ready results pass through the ordered
    #: queue untouched, async ones block on .get() at their turn.
    pending: deque = deque()

    def resolve(entry):
        ready, value = entry
        if ready:
            return value
        # Time blocked on the ordered-consume turn: ~0 when the chunk
        # already finished, the pipeline's stall otherwise.
        with span("executor.stall"):
            value = value.get()
        if metered:
            results, snapshot = value
            registry = telemetry.active_registry()
            if registry is not None:
                registry.merge_snapshot(snapshot)
            return results
        return value

    task = _execute_chunk_metered if metered else _execute_chunk
    pool = None
    try:
        for payloads in payload_chunks:
            if not payloads:
                pending.append((True, []))
            else:
                if pool is None:
                    pool = multiprocessing.Pool(
                        processes=workers,
                        initializer=(
                            _worker_telemetry_init if metered else None
                        ),
                    )
                pending.append(
                    (False, pool.apply_async(task, (payloads,)))
                )
            telemetry.observe("executor.window_occupancy", len(pending))
            while len(pending) >= window:
                yield resolve(pending.popleft())
        while pending:
            yield resolve(pending.popleft())
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()


@dataclass
class RunReport:
    """Outcome of one executor submission."""

    #: Native result objects, in submission order.
    results: List[Any] = field(default_factory=list)
    #: Serialized result dicts, parallel to ``results`` (the byte-stable
    #: form used for determinism checks and store records).
    result_dicts: List[dict] = field(default_factory=list)
    #: Number of scenarios actually executed by this submission.
    executed: int = 0
    #: Number of scenarios served from the store without running.
    cached: int = 0
    #: Worker count requested for the simulated portion.
    jobs: int = 1
    #: Chunks the planner produced (inline + pooled).
    chunks: int = 0
    #: True when the pooled portion actually used the process pool
    #: (False under the tiny-grid / single-CPU auto-serial fallback).
    pool_used: bool = False

    def canonical_json(self) -> str:
        """Canonical serialization of the batch's results (sorted keys),
        independent of worker count or cache hits — the byte-identity
        invariant checked by the determinism tests."""
        import json

        return json.dumps(
            self.result_dicts, sort_keys=True, separators=(",", ":")
        )


class ParallelExecutor:
    """Runs scenario batches across a process pool, chunk-wise.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1``
        falls back to in-process serial execution.
    store:
        Optional default :class:`ResultStore` for :meth:`run`.
    resume:
        Default resume behaviour for :meth:`run`.
    chunk_size:
        Points per pooled chunk; ``None`` lets the planner size chunks
        (a few per worker, capped — see
        :func:`~repro.runner.planner.auto_chunk_size`).
    pool:
        Pool policy: ``"auto"`` (default; serial fallback for tiny
        grids and single-CPU machines), ``"always"``, or ``"never"``.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        resume: bool = False,
        chunk_size: Optional[int] = None,
        pool: str = "auto",
    ):
        self.jobs = default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.resume = resume
        self.chunk_size = chunk_size
        self.pool = pool

    def run(
        self,
        scenarios: Iterable[Scenario],
        store: Optional[ResultStore] = None,
        resume: Optional[bool] = None,
    ) -> RunReport:
        """Execute a batch; results come back in submission order."""
        from ..backends import get_backend

        batch: Sequence[Scenario] = list(scenarios)
        store = store if store is not None else self.store
        resume = self.resume if resume is None else resume
        report = RunReport(jobs=self.jobs)
        result_dicts: List[Optional[dict]] = [None] * len(batch)

        # Serve warm points from the store first (records that are
        # missing or unreadable — torn file, foreign schema — simply
        # count as cold and are recomputed).
        pending: List[int] = []
        for i, scenario in enumerate(batch):
            cached = (
                store.load_dict(scenario)
                if resume and store is not None
                else None
            )
            if cached is not None:
                result_dicts[i] = cached
                report.cached += 1
            else:
                pending.append(i)

        plan = plan_execution(
            batch, pending, self.jobs,
            chunk_size=self.chunk_size, pool=self.pool,
        )
        report.chunks = len(plan.inline_chunks) + len(plan.pool_chunks)
        report.pool_used = plan.use_pool

        # Results are recorded in the store chunk-by-chunk as each one
        # lands, so an interrupted run keeps its completed prefix for
        # --resume.
        def consume(indices, computed) -> None:
            for i, result_dict in zip(indices, computed):
                result_dicts[i] = result_dict
                if store is not None:
                    store.put_dict(batch[i], result_dict)

        # Inline chunks (analytic: the vectorized kernel) run
        # in-process, whole sub-batch at once.  The results still flow
        # through result_to_dict, so the stored and reported form is
        # identical to the pooled path's.
        for chunk in plan.inline_chunks:
            backend = get_backend(chunk.backend)
            chunk_scenarios = [batch[i] for i in chunk.indices]
            for scenario in chunk_scenarios:
                if not backend.supports(scenario):
                    raise ValueError(
                        f"backend {scenario.backend!r} does not support "
                        f"{scenario!r}"
                    )
            consume(
                chunk.indices,
                (
                    result_to_dict(scenario, result)
                    for scenario, result in zip(
                        chunk_scenarios,
                        backend.run_batch(chunk_scenarios),
                    )
                ),
            )

        if plan.use_pool:
            payloads = [
                [batch[i].to_dict() for i in chunk.indices]
                for chunk in plan.pool_chunks
            ]
            with multiprocessing.Pool(processes=plan.workers) as mp_pool:
                for chunk, chunk_results in zip(
                    plan.pool_chunks,
                    mp_pool.imap(_execute_chunk, payloads, chunksize=1),
                ):
                    consume(chunk.indices, chunk_results)
        else:
            for chunk in plan.pool_chunks:
                consume(
                    chunk.indices,
                    (
                        result_to_dict(batch[i], execute(batch[i]))
                        for i in chunk.indices
                    ),
                )
        report.executed = len(pending)

        report.result_dicts = result_dicts  # type: ignore[assignment]
        report.results = [
            result_from_dict(scenario, result_dict)
            for scenario, result_dict in zip(batch, result_dicts)
        ]
        return report


def run_scenarios(
    scenarios: Iterable[Scenario],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    chunk_size: Optional[int] = None,
    pool: str = "auto",
) -> RunReport:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(jobs=jobs, chunk_size=chunk_size, pool=pool).run(
        scenarios, store=store, resume=resume
    )


def run_specs(
    specs: Iterable[Any],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    backend: str = "sim",
) -> List[Any]:
    """Run bare spec dataclasses (BenchSpec / PatternConfig mixes are
    fine) under ``backend`` and return their native results in
    submission order."""
    scenarios = [scenario_for(spec, backend=backend) for spec in specs]
    return run_scenarios(
        scenarios, jobs=jobs, store=store, resume=resume
    ).results
