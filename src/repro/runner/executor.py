"""Parallel scenario fan-out with deterministic, serial-identical results.

Every scenario builds its own :class:`~repro.mpi.world.MPIWorld` and
shares no state with its neighbours, so a grid is embarrassingly
parallel.  The :class:`ParallelExecutor` fans scenarios out across a
``multiprocessing`` pool and reassembles results **in submission
order**, and both the serial and the parallel path move results through
the same serialized form (:func:`~repro.runner.scenario.result_to_dict`)
— so the output of ``jobs=N`` is byte-identical to ``jobs=1``.

``jobs=1`` (or a single pending scenario) never touches
``multiprocessing``: it executes in-process, which keeps tracebacks
direct and makes the serial path usable everywhere (tests, notebooks,
platforms without ``fork``).

Dispatch is backend-aware: scenarios whose backend is *inline* (the
analytic model — microseconds per point) always run in-process, even in
a ``jobs=N`` submission; only simulation-backed scenarios are worth a
worker process.  A mixed batch splits accordingly and still reassembles
in submission order.

With a :class:`~repro.runner.store.ResultStore` attached, computed
results are recorded and — under ``resume=True`` — already-recorded
scenarios are served from the store without running a single simulation.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

from .scenario import (
    Scenario,
    execute,
    result_from_dict,
    result_to_dict,
    scenario_for,
)
from .store import ResultStore

__all__ = ["ParallelExecutor", "RunReport", "run_scenarios", "run_specs"]


def default_jobs() -> int:
    """The default worker count: one per available CPU."""
    return os.cpu_count() or 1


def _execute_payload(payload: dict) -> dict:
    """Pool worker: scenario dict in, result dict out.

    Module-level (picklable) and dict-in/dict-out so that exactly the
    serialized representation crosses the process boundary.
    """
    scenario = Scenario.from_dict(payload)
    return result_to_dict(scenario, execute(scenario))


@dataclass
class RunReport:
    """Outcome of one executor submission."""

    #: Native result objects, in submission order.
    results: List[Any] = field(default_factory=list)
    #: Serialized result dicts, parallel to ``results`` (the byte-stable
    #: form used for determinism checks and store records).
    result_dicts: List[dict] = field(default_factory=list)
    #: Number of scenarios actually simulated by this submission.
    executed: int = 0
    #: Number of scenarios served from the store without running.
    cached: int = 0
    #: Worker count used for the simulated portion.
    jobs: int = 1

    def canonical_json(self) -> str:
        """Canonical serialization of the batch's results (sorted keys),
        independent of worker count or cache hits — the byte-identity
        invariant checked by the determinism tests."""
        import json

        return json.dumps(
            self.result_dicts, sort_keys=True, separators=(",", ":")
        )


class ParallelExecutor:
    """Runs scenario batches across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1``
        falls back to in-process serial execution.
    store:
        Optional default :class:`ResultStore` for :meth:`run`.
    resume:
        Default resume behaviour for :meth:`run`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        resume: bool = False,
    ):
        self.jobs = default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.resume = resume

    def run(
        self,
        scenarios: Iterable[Scenario],
        store: Optional[ResultStore] = None,
        resume: Optional[bool] = None,
    ) -> RunReport:
        """Execute a batch; results come back in submission order."""
        batch: Sequence[Scenario] = list(scenarios)
        store = store if store is not None else self.store
        resume = self.resume if resume is None else resume
        report = RunReport(jobs=self.jobs)
        result_dicts: List[Optional[dict]] = [None] * len(batch)

        # Serve warm points from the store first (records that are
        # missing or unreadable — torn file, foreign schema — simply
        # count as cold and are recomputed).
        pending: List[int] = []
        for i, scenario in enumerate(batch):
            cached = (
                store.load_dict(scenario)
                if resume and store is not None
                else None
            )
            if cached is not None:
                result_dicts[i] = cached
                report.cached += 1
            else:
                pending.append(i)

        # Fan the cold points out (or run them inline for jobs=1).
        # Results are recorded in the store as each one lands, so an
        # interrupted run keeps its completed prefix for --resume.
        # Inline-backend scenarios (analytic: microseconds per point)
        # never go to the pool — fork/pickle overhead would dominate.
        from ..backends import get_backend

        def consume(indices, computed) -> None:
            for i, result_dict in zip(indices, computed):
                result_dicts[i] = result_dict
                if store is not None:
                    store.put_dict(batch[i], result_dict)

        pooled = [
            i for i in pending if not get_backend(batch[i].backend).inline
        ]
        inline = [
            i for i in pending if get_backend(batch[i].backend).inline
        ]
        # Inline points skip the serialize/deserialize round trip too —
        # the result still flows through result_to_dict, so the stored
        # and reported form is identical to the pooled path's.
        consume(
            inline,
            (result_to_dict(batch[i], execute(batch[i])) for i in inline),
        )
        payloads = [batch[i].to_dict() for i in pooled]
        if len(payloads) <= 1 or self.jobs == 1:
            consume(pooled, map(_execute_payload, payloads))
        else:
            workers = min(self.jobs, len(payloads))
            with multiprocessing.Pool(processes=workers) as pool:
                consume(
                    pooled,
                    pool.imap(_execute_payload, payloads, chunksize=1),
                )
        report.executed = len(pending)

        report.result_dicts = result_dicts  # type: ignore[assignment]
        report.results = [
            result_from_dict(scenario, result_dict)
            for scenario, result_dict in zip(batch, result_dicts)
        ]
        return report


def run_scenarios(
    scenarios: Iterable[Scenario],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> RunReport:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(jobs=jobs).run(scenarios, store=store, resume=resume)


def run_specs(
    specs: Iterable[Any],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    backend: str = "sim",
) -> List[Any]:
    """Run bare spec dataclasses (BenchSpec / PatternConfig mixes are
    fine) under ``backend`` and return their native results in
    submission order."""
    scenarios = [scenario_for(spec, backend=backend) for spec in specs]
    return run_scenarios(
        scenarios, jobs=jobs, store=store, resume=resume
    ).results
