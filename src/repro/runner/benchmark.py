"""Runner self-benchmark: the ``BENCH_runner.json`` perf-trajectory feed.

Times one fixed quick grid — a mixed batch of two-rank bench points and
an N-rank application point — through the executor at ``jobs=1`` and
``jobs=N``, and writes the wall-clock numbers to ``BENCH_runner.json``
so the parallel-speedup trajectory is tracked from PR to PR.

Run:  ``python -m repro runner-bench [--jobs N] [--json PATH]``
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import List, Optional

from .executor import ParallelExecutor, default_jobs
from .scenario import Scenario, ScenarioGrid

__all__ = ["DEFAULT_JSON_PATH", "fixed_quick_grid", "benchmark_runner"]

#: Default persistence target (picked up by the perf trajectory).
DEFAULT_JSON_PATH = "BENCH_runner.json"

#: v3: the ``note`` always names the core count the measurement ran on
#: (CI regenerates this payload on a multi-core runner, so a committed
#: single-core number is distinguishable at a glance; v2 added chunked
#: submission + pool policy fields ``pool_used``/``cpu_count``).
_SCHEMA = "repro.runner.bench/v3"


def fixed_quick_grid(backend: str = "sim") -> List[Scenario]:
    """The fixed mixed grid every ``runner-bench`` invocation times.

    Held constant across PRs so the JSON numbers stay comparable:
    4 approaches × 3 sizes of the two-rank harness at 4 threads, plus a
    Halo3D application point — 13 scenarios.
    """
    bench = ScenarioGrid(
        "bench",
        base={"n_threads": 4, "theta": 4, "iterations": 10},
        axes={
            "approach": [
                "pt2pt_single",
                "pt2pt_many",
                "pt2pt_part",
                "rma_single_passive",
            ],
            "total_bytes": [1 << 12, 1 << 16, 1 << 20],
        },
        backend=backend,
    )
    pattern = ScenarioGrid(
        "pattern",
        base={
            "n_ranks": 8,
            "n_threads": 2,
            "msg_bytes": 1 << 14,
            "iterations": 5,
            "compute_us_per_mb": 200.0,
        },
        axes={"pattern": ["halo3d"], "approach": ["pt2pt_part"]},
        backend=backend,
    )
    return bench.expand() + pattern.expand()


def _time_run(scenarios: List[Scenario], jobs: int) -> dict:
    t0 = time.perf_counter()
    report = ParallelExecutor(jobs=jobs).run(scenarios)
    wall = time.perf_counter() - t0
    return {
        "jobs": jobs,
        "wall_s": round(wall, 4),
        "chunks": report.chunks,
        "pool_used": report.pool_used,
    }


def benchmark_runner(
    jobs: Optional[int] = None,
    path: str | Path = DEFAULT_JSON_PATH,
    repeats: int = 1,
    backend: str = "sim",
) -> dict:
    """Time the fixed grid serial vs parallel and persist the outcome.

    Returns the written payload.  ``jobs=None`` uses every CPU (at
    least 2, so the parallel configuration is always the one timed);
    the best of ``repeats`` wall-clocks is kept for each mode.
    ``backend`` selects the execution backend the grid runs under
    (analytic batches run through the in-process vectorized kernel, so
    their two timings mostly measure dispatch overhead).

    The executor submits *chunks* under the "auto" pool policy: on a
    multi-core machine the jobs=N run uses the pool with amortized IPC;
    on a single-CPU machine (``cpu_count == 1``) it falls back to
    in-process serial execution — forking workers that time-slice one
    core can only lose — so the recorded speedup is ~1.0 by
    construction there (the ``note`` field documents which case the
    payload captured).
    """
    n_jobs = max(2, default_jobs()) if jobs is None else max(1, int(jobs))
    scenarios = fixed_quick_grid(backend=backend)
    runs = max(1, repeats)
    serial = min(
        (_time_run(scenarios, jobs=1) for _ in range(runs)),
        key=lambda r: r["wall_s"],
    )
    parallel = min(
        (_time_run(scenarios, jobs=n_jobs) for _ in range(runs)),
        key=lambda r: r["wall_s"],
    )
    if parallel["pool_used"]:
        note = (
            f"jobs={n_jobs} used the process pool with chunked "
            f"submission ({parallel['chunks']} chunk(s)) on "
            f"{default_jobs()} core(s)"
        )
    else:
        note = (
            f"auto-serial fallback: jobs={n_jobs} ran in-process "
            f"(cpu_count={default_jobs()}, grid of {len(scenarios)} "
            f"points); pool workers cannot beat serial here"
        )
    payload = {
        "schema": _SCHEMA,
        "backend": backend,
        "n_scenarios": len(scenarios),
        "grid": "4 approaches x 3 sizes (bench, N=4/theta=4/iters=10) "
                "+ halo3d pt2pt_part (8 ranks)",
        "python": platform.python_version(),
        "cpu_count": default_jobs(),
        "serial": serial,
        "parallel": parallel,
        "speedup": (
            round(serial["wall_s"] / parallel["wall_s"], 3)
            if parallel["wall_s"] > 0
            else None
        ),
        "note": note,
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
