"""``campaign profile``: stage attribution from a metrics JSONL.

Turns the span totals recorded by a ``campaign run --metrics`` session
into the pipeline-attribution table the ROADMAP's async-writer and
query-service items are judged against: how much of the campaign wall
went to kernel evaluation vs column decode vs JSON encode vs segment
writes vs ordered-consume stall — and which stage dominates.

The stage map deliberately lists only **leaf** span names (regions that
never nest inside each other), so summing them against the root
``campaign.run`` span never double-counts; whatever the leaves do not
cover is reported honestly as ``other`` (chunk-loop bookkeeping,
progress output, index reads).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..telemetry import read_metrics_jsonl

__all__ = [
    "DEFAULT_METRICS_NAME",
    "Attribution",
    "build_attribution",
    "render_profile",
    "resolve_metrics_path",
]

#: Where ``campaign run --metrics`` (no explicit path) lands inside the
#: campaign root — and where ``campaign profile STORE`` looks first.
DEFAULT_METRICS_NAME = "metrics.jsonl"

#: The root span whose total is the campaign wall clock.
ROOT_SPAN = "campaign.run"

#: stage label -> the leaf span names that make it up.  Leaves only:
#: none of these regions ever contains another, so their totals are
#: additive against the root.
STAGE_SPANS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("decode", ("campaign.decode",)),
    ("kernel", ("kernel.eval", "kernel.topology")),
    ("encode", ("store.encode",)),
    ("write", ("store.write",)),
    ("index", ("store.index",)),
    ("materialize", ("campaign.materialize",)),
    ("compute", ("executor.compute",)),
    ("stall", ("executor.stall",)),
    ("writer-stall", ("store.writer.stall",)),
    ("read", ("store.read.plan", "store.read.segment")),
    ("shard", ("campaign.shard.run", "campaign.shard.merge")),
)

#: What to do about a dominant stage (the actionable one-liner).
_STAGE_HINTS: Dict[str, str] = {
    "decode": "grid-index decode dominates; widen chunks or cache axis "
              "columns",
    "kernel": "model kernel evaluation dominates; the numpy path is the "
              "bottleneck, not serialization",
    "encode": "JSON encode dominates; the ROADMAP binary-segment / "
              "async-writer items attack exactly this stage",
    "write": "segment write/replace dominates; check disk or gzip cost",
    "index": "index.json rewrites dominate; batch appends or widen chunks",
    "materialize": "scenario materialization + cache lookup dominates; "
                   "this is per-point python object cost",
    "compute": "in-process simulation compute dominates; add workers "
               "(--jobs N)",
    "stall": "ordered-consume stall dominates; raise --submit-ahead or "
             "rebalance chunk sizes",
    "writer-stall": "the async segment writer's queue is the bottleneck; "
                    "the disk (or gzip) cannot keep up with the kernel",
    "read": "columnar read (range planning + segment loads) dominates; "
            "mixed-in text segments decode whole — compact --binary",
    "shard": "shard subprocess wall (kernel runs there) plus merge; "
             "per-shard attribution lives in each shard's metrics file",
    "other": "uninstrumented time dominates; the span coverage needs "
             "a closer look before trusting this profile",
}


class Attribution:
    """The computed attribution: stages, total, and the dominant one."""

    def __init__(
        self,
        total_wall_s: float,
        stages: List[dict],
        counters: Dict[str, float],
        metrics: dict,
    ):
        self.total_wall_s = total_wall_s
        #: ``{stage, wall_s, share, count}`` rows, descending by wall.
        self.stages = stages
        self.counters = counters
        self.metrics = metrics

    @property
    def accounted_s(self) -> float:
        return sum(
            row["wall_s"] for row in self.stages if row["stage"] != "other"
        )

    @property
    def accounted_share(self) -> float:
        if not self.total_wall_s:
            return 0.0
        return self.accounted_s / self.total_wall_s

    @property
    def dominant(self) -> Optional[dict]:
        return self.stages[0] if self.stages else None

    def to_dict(self) -> dict:
        return {
            "total_wall_s": self.total_wall_s,
            "accounted_s": self.accounted_s,
            "accounted_share": self.accounted_share,
            "stages": self.stages,
            "dominant": (self.dominant or {}).get("stage"),
        }


def resolve_metrics_path(target: str | Path) -> Path:
    """A metrics JSONL path from either a file or a campaign root."""
    path = Path(target)
    if path.is_dir():
        candidate = path / DEFAULT_METRICS_NAME
        if not candidate.is_file():
            raise FileNotFoundError(
                f"{path} holds no {DEFAULT_METRICS_NAME}; run "
                f"'campaign run ... --metrics' first or point at the "
                f"metrics file directly"
            )
        return candidate
    if not path.is_file():
        raise FileNotFoundError(f"no metrics file at {path}")
    return path


def build_attribution(metrics: dict) -> Attribution:
    """Compute the stage table from a parsed metrics dict
    (:func:`~repro.telemetry.read_metrics_jsonl` output)."""
    span_totals = metrics.get("span_totals", {})
    root = span_totals.get(ROOT_SPAN)
    if root is None:
        raise ValueError(
            f"metrics hold no {ROOT_SPAN!r} span — was the registry "
            f"active during the campaign run?"
        )
    total = float(root["total_s"])
    stages: List[dict] = []
    for stage, names in STAGE_SPANS:
        wall = sum(
            span_totals[name]["total_s"]
            for name in names
            if name in span_totals
        )
        count = sum(
            span_totals[name]["count"]
            for name in names
            if name in span_totals
        )
        if count == 0:
            continue
        stages.append(
            {
                "stage": stage,
                "wall_s": wall,
                "share": (wall / total) if total else 0.0,
                "count": count,
            }
        )
    accounted = sum(row["wall_s"] for row in stages)
    other = max(0.0, total - accounted)
    stages.append(
        {
            "stage": "other",
            "wall_s": other,
            "share": (other / total) if total else 0.0,
            "count": None,
        }
    )
    stages.sort(key=lambda row: row["wall_s"], reverse=True)
    return Attribution(total, stages, metrics.get("counters", {}), metrics)


def _worker_section(attribution: Attribution) -> List[str]:
    """Worker-pool lines, when the run fanned chunks out to a pool."""
    metrics = attribution.metrics
    busy = metrics.get("span_totals", {}).get("executor.worker.execute")
    workers = metrics.get("gauges", {}).get("planner.workers")
    if not busy or not workers or workers <= 1:
        return []
    capacity = attribution.total_wall_s * workers
    lines = [
        f"  worker pool: {int(workers)} workers, "
        f"{busy['count']} points, busy {busy['total_s']:.2f}s "
        f"of {capacity:.2f}s capacity"
    ]
    if capacity > 0:
        lines[-1] += f" ({busy['total_s'] / capacity:.0%} utilization)"
    return lines


def render_profile(path: str | Path, as_json: bool = False) -> str:
    """The human (or ``--json``) profile report for a metrics file."""
    metrics = read_metrics_jsonl(path)
    attribution = build_attribution(metrics)
    if as_json:
        payload = attribution.to_dict()
        payload["counters"] = attribution.counters
        payload["producer"] = (metrics.get("header") or {}).get("producer")
        return json.dumps(payload, indent=2, sort_keys=True)

    header = metrics.get("header") or {}
    producer = header.get("producer", {})
    lines = [f"campaign profile: {path}"]
    if producer:
        desc = " ".join(
            str(producer[key])
            for key in ("backend", "kind", "grid_hash")
            if key in producer
        )
        if desc:
            lines.append(f"  producer: {desc}")
    lines.append(
        f"  total wall: {attribution.total_wall_s:.3f}s "
        f"({ROOT_SPAN} span), "
        f"{attribution.accounted_share:.0%} attributed to stages"
    )
    lines.append("")
    lines.append(f"  {'stage':<12} {'wall_s':>10} {'share':>7} {'spans':>8}")
    lines.append("  " + "-" * 40)
    for row in attribution.stages:
        count = "-" if row["count"] is None else str(row["count"])
        lines.append(
            f"  {row['stage']:<12} {row['wall_s']:>10.4f} "
            f"{row['share']:>6.1%} {count:>8}"
        )
    dominant = attribution.dominant
    if dominant is not None:
        hint = _STAGE_HINTS.get(dominant["stage"], "")
        lines.append("")
        lines.append(
            f"  dominant stage: {dominant['stage']} "
            f"({dominant['share']:.1%})" + (f" — {hint}" if hint else "")
        )
    lines.extend(_worker_section(attribution))
    interesting = {
        "campaign.points": "points",
        "campaign.chunks": "chunks",
        "store.segments_written": "segments",
        "store.bytes_written": "bytes written",
    }
    facts = [
        f"{label} {int(attribution.counters[name]):,}"
        for name, label in interesting.items()
        if name in attribution.counters
    ]
    if facts:
        lines.append(f"  {', '.join(facts)}")
    n_traces = sum(
        1 for _ in metrics.get("traces", ())
    )
    if n_traces:
        lines.append(f"  trace records: {n_traces:,}")
    return "\n".join(lines)
