"""The declarative scenario protocol: one grid language for every run.

Every result in the reproduction is a point on a grid of independent
simulated runs — approaches × sizes × threads × noise × ... — yet the
two benchmark families historically spoke different dialects
(:class:`~repro.bench.harness.BenchSpec` for the two-rank Fig. 3 harness,
:class:`~repro.apps.base.PatternConfig` for N-rank application
patterns).  A :class:`Scenario` wraps either behind one serializable
protocol:

* ``to_dict()`` / ``from_dict()`` round-trip the full spec (including
  the nested :class:`~repro.net.params.SystemParams` machine model and
  :class:`~repro.mpi.cvars.Cvars` runtime knobs) *and* the execution
  backend — the backend is part of a scenario's identity;
* ``content_hash()`` is a stable SHA-256 over the canonical JSON form,
  addressing the scenario in a :class:`~repro.runner.store.ResultStore`
  (an analytic record can never be confused with a simulated one: the
  backend tag is inside the hash);
* :func:`execute` runs the point through its backend
  (:mod:`repro.backends`); :func:`result_to_dict` /
  :func:`result_from_dict` serialize the outcome (statistics are
  recomputed on load, never trusted from the file).

A :class:`ScenarioGrid` expands axis specs into scenarios in a
deterministic order (row-major over the axes in declaration order), so
grid expansion — and therefore result ordering — is reproducible.

Imports of the bench/apps layers happen lazily inside functions: the
sweep modules of both layers submit their grids here, and eager imports
would cycle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

__all__ = [
    "SCHEMA",
    "Scenario",
    "ScenarioGrid",
    "scenario_for",
    "execute",
    "result_to_dict",
    "result_from_dict",
]

#: Version tag baked into every serialized scenario (and therefore into
#: every content hash): bumping it invalidates caches when the scenario
#: semantics change.  v2 added the execution backend to the scenario
#: identity.
SCHEMA = "repro.runner/v2"

#: The default execution backend (the full discrete-event simulator).
DEFAULT_BACKEND = "sim"

#: Scenario kinds and the spec dataclass each one wraps.
KIND_BENCH = "bench"
KIND_PATTERN = "pattern"


def _spec_types() -> Dict[str, type]:
    from ..apps.base import PatternConfig
    from ..bench.harness import BenchSpec

    return {KIND_BENCH: BenchSpec, KIND_PATTERN: PatternConfig}


def _rebuild_spec(kind: str, fields: Mapping[str, Any]):
    from ..mpi import Cvars
    from ..net import SystemParams

    types = _spec_types()
    if kind not in types:
        raise ValueError(f"unknown scenario kind {kind!r}")
    data = dict(fields)
    data["params"] = SystemParams(**data["params"])
    data["cvars"] = Cvars(**data["cvars"])
    return types[kind](**data)


@dataclass(frozen=True)
class Scenario:
    """One grid point: a kind tag, its frozen spec dataclass, and the
    execution backend it runs under (part of the content identity)."""

    kind: str
    spec: Any  # BenchSpec | PatternConfig (both frozen dataclasses)
    backend: str = DEFAULT_BACKEND

    def with_backend(self, backend: str) -> "Scenario":
        """The same grid point under a different execution backend."""
        return Scenario(kind=self.kind, spec=self.spec, backend=backend)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe canonical form (nested params/cvars as dicts)."""
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "backend": self.backend,
            "spec": dataclasses.asdict(self.spec),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unrecognized scenario schema {payload.get('schema')!r}"
            )
        kind = payload["kind"]
        return cls(
            kind=kind,
            spec=_rebuild_spec(kind, payload["spec"]),
            backend=payload.get("backend", DEFAULT_BACKEND),
        )

    def canonical_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — the hash input."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the canonical form."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

def scenario_for(spec: Any, backend: str = DEFAULT_BACKEND) -> Scenario:
    """Wrap a bare spec dataclass, inferring its kind from the type."""
    for kind, typ in _spec_types().items():
        if isinstance(spec, typ):
            return Scenario(kind=kind, spec=spec, backend=backend)
    raise TypeError(f"not a known scenario spec: {spec!r}")


# -- execution ---------------------------------------------------------------

def execute(scenario: Scenario):
    """Run one scenario through its backend, returning its native
    result object (see :mod:`repro.backends`)."""
    from ..backends import get_backend

    backend = get_backend(scenario.backend)
    if not backend.supports(scenario):
        raise ValueError(
            f"backend {scenario.backend!r} does not support {scenario!r}"
        )
    return backend.run(scenario)


def result_to_dict(scenario: Scenario, result: Any) -> dict:
    """Serialize a result: raw samples plus kind-specific extras.

    Derived statistics are deliberately omitted — they are recomputed by
    :func:`result_from_dict`, so a store never serves stale stats.
    """
    if scenario.kind == KIND_BENCH:
        return {
            "times": [float(t) for t in result.times],
            "retries": int(result.retries),
            "verified": bool(result.verified),
        }
    return {
        "times": [float(t) for t in result.times],
        "bytes_per_iteration": int(result.bytes_per_iteration),
        "n_links": int(result.n_links),
    }


def result_from_dict(scenario: Scenario, payload: Mapping[str, Any]):
    """Rebuild the native result object for ``scenario`` from a dict."""
    from ..bench.stats import summarize

    times = [float(t) for t in payload["times"]]
    if scenario.kind == KIND_BENCH:
        from ..bench.harness import BenchResult

        return BenchResult(
            spec=scenario.spec,
            times=times,
            stats=summarize(times),
            retries=int(payload["retries"]),
            verified=bool(payload["verified"]),
        )
    from ..apps.base import PatternResult

    return PatternResult(
        config=scenario.spec,
        times=times,
        stats=summarize(times),
        bytes_per_iteration=int(payload["bytes_per_iteration"]),
        n_links=int(payload["n_links"]),
    )


# -- grids -------------------------------------------------------------------

class ScenarioGrid:
    """Declarative cross-product of scenario axes.

    Parameters
    ----------
    kind:
        ``"bench"`` or ``"pattern"``.
    base:
        Fixed spec fields shared by every point (e.g. ``iterations``,
        ``params``, ``cvars``).
    axes:
        Ordered mapping of spec field → sequence of values.  Expansion
        is row-major in declaration order: the last axis varies fastest.
    backend:
        Execution backend tag stamped on every scenario of the grid.

    Example
    -------
    >>> grid = ScenarioGrid(
    ...     "bench",
    ...     base={"iterations": 3},
    ...     axes={"approach": ["pt2pt_single", "pt2pt_part"],
    ...           "total_bytes": [1024, 4096]},
    ... )
    >>> len(grid)
    4
    """

    def __init__(
        self,
        kind: str,
        base: Mapping[str, Any] | None = None,
        axes: Mapping[str, Sequence[Any]] | None = None,
        backend: str = DEFAULT_BACKEND,
    ):
        if kind not in (KIND_BENCH, KIND_PATTERN):
            raise ValueError(f"unknown scenario kind {kind!r}")
        self.kind = kind
        self.backend = backend
        self.base: Dict[str, Any] = dict(base or {})
        self.axes: Dict[str, Sequence[Any]] = dict(axes or {})
        for name, values in self.axes.items():
            if name in self.base:
                raise ValueError(f"axis {name!r} also fixed in base")
            if not len(values):
                raise ValueError(f"axis {name!r} is empty")

    def points(self) -> Iterator[Tuple[Dict[str, Any], "Scenario"]]:
        """Yield ``(axis_assignment, scenario)`` pairs in grid order."""
        spec_type = _spec_types()[self.kind]
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            assignment = dict(zip(names, combo))
            spec = spec_type(**{**self.base, **assignment})
            yield assignment, Scenario(
                kind=self.kind, spec=spec, backend=self.backend
            )

    def expand(self) -> List[Scenario]:
        """All scenarios of the grid, in deterministic row-major order."""
        return [scenario for _, scenario in self.points()]

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        dims = "x".join(str(len(v)) for v in self.axes.values()) or "1"
        return f"<ScenarioGrid {self.kind} {dims} ({len(self)} points)>"
