"""The declarative scenario protocol: one grid language for every run.

Every result in the reproduction is a point on a grid of independent
simulated runs — approaches × sizes × threads × noise × ... — yet the
two benchmark families historically spoke different dialects
(:class:`~repro.bench.harness.BenchSpec` for the two-rank Fig. 3 harness,
:class:`~repro.apps.base.PatternConfig` for N-rank application
patterns).  A :class:`Scenario` wraps either behind one serializable
protocol:

* ``to_dict()`` / ``from_dict()`` round-trip the full spec (including
  the nested :class:`~repro.net.params.SystemParams` machine model and
  :class:`~repro.mpi.cvars.Cvars` runtime knobs) *and* the execution
  backend — the backend is part of a scenario's identity;
* ``content_hash()`` is a stable SHA-256 over the canonical JSON form,
  addressing the scenario in a :class:`~repro.runner.store.ResultStore`
  (an analytic record can never be confused with a simulated one: the
  backend tag is inside the hash);
* :func:`execute` runs the point through its backend
  (:mod:`repro.backends`); :func:`result_to_dict` /
  :func:`result_from_dict` serialize the outcome (statistics are
  recomputed on load, never trusted from the file).

A :class:`ScenarioGrid` expands axis specs into scenarios in a
deterministic order (row-major over the axes in declaration order), so
grid expansion — and therefore result ordering — is reproducible.

Imports of the bench/apps layers happen lazily inside functions: the
sweep modules of both layers submit their grids here, and eager imports
would cycle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

__all__ = [
    "SCHEMA",
    "GRID_SCHEMA",
    "Scenario",
    "ScenarioGrid",
    "scenario_for",
    "execute",
    "result_to_dict",
    "result_from_dict",
]

#: Version tag baked into every serialized scenario (and therefore into
#: every content hash): bumping it invalidates caches when the scenario
#: semantics change.  v2 added the execution backend to the scenario
#: identity.
SCHEMA = "repro.runner/v2"

#: Version tag of the serialized declarative grid form
#: (:meth:`ScenarioGrid.to_dict`), baked into every campaign identity.
#: v2 added the explicit ``axis_order`` list: axis declaration order
#: *is* the row-major index mapping, and a JSON object's key order
#: does not survive key-sorted serialization (the campaign header and
#: every content hash are written with ``sort_keys=True``, which
#: alphabetized the axes dict and silently remapped indices on
#: reopen) — a list does.
GRID_SCHEMA = "repro.runner.grid/v2"

#: Grid schema tags :meth:`ScenarioGrid.from_dict` accepts.  v1
#: payloads (no ``axis_order``) parse with their axes dict's order —
#: correct only when that order survived serialization, which is why
#: v2 exists.
_GRID_SCHEMAS = (None, "repro.runner.grid/v1", GRID_SCHEMA)

#: The default execution backend (the full discrete-event simulator).
DEFAULT_BACKEND = "sim"

#: Scenario kinds and the spec dataclass each one wraps.
KIND_BENCH = "bench"
KIND_PATTERN = "pattern"


def _spec_types() -> Dict[str, type]:
    from ..apps.base import PatternConfig
    from ..bench.harness import BenchSpec

    return {KIND_BENCH: BenchSpec, KIND_PATTERN: PatternConfig}


def _rebuild_spec(kind: str, fields: Mapping[str, Any]):
    from ..mpi import Cvars
    from ..net import SystemParams

    types = _spec_types()
    if kind not in types:
        raise ValueError(f"unknown scenario kind {kind!r}")
    data = dict(fields)
    data["params"] = SystemParams(**data["params"])
    data["cvars"] = Cvars(**data["cvars"])
    return types[kind](**data)


@dataclass(frozen=True)
class Scenario:
    """One grid point: a kind tag, its frozen spec dataclass, and the
    execution backend it runs under (part of the content identity)."""

    kind: str
    spec: Any  # BenchSpec | PatternConfig (both frozen dataclasses)
    backend: str = DEFAULT_BACKEND

    def with_backend(self, backend: str) -> "Scenario":
        """The same grid point under a different execution backend."""
        return Scenario(kind=self.kind, spec=self.spec, backend=backend)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe canonical form (nested params/cvars as dicts)."""
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "backend": self.backend,
            "spec": dataclasses.asdict(self.spec),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unrecognized scenario schema {payload.get('schema')!r}"
            )
        kind = payload["kind"]
        return cls(
            kind=kind,
            spec=_rebuild_spec(kind, payload["spec"]),
            backend=payload.get("backend", DEFAULT_BACKEND),
        )

    def canonical_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — the hash input."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the canonical form."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

def scenario_for(spec: Any, backend: str = DEFAULT_BACKEND) -> Scenario:
    """Wrap a bare spec dataclass, inferring its kind from the type."""
    for kind, typ in _spec_types().items():
        if isinstance(spec, typ):
            return Scenario(kind=kind, spec=spec, backend=backend)
    raise TypeError(f"not a known scenario spec: {spec!r}")


# -- execution ---------------------------------------------------------------

def execute(scenario: Scenario):
    """Run one scenario through its backend, returning its native
    result object (see :mod:`repro.backends`)."""
    from ..backends import get_backend

    backend = get_backend(scenario.backend)
    if not backend.supports(scenario):
        raise ValueError(
            f"backend {scenario.backend!r} does not support {scenario!r}"
        )
    return backend.run(scenario)


def result_to_dict(scenario: Scenario, result: Any) -> dict:
    """Serialize a result: raw samples plus kind-specific extras.

    Derived statistics are deliberately omitted — they are recomputed by
    :func:`result_from_dict`, so a store never serves stale stats.
    """
    if scenario.kind == KIND_BENCH:
        return {
            "times": [float(t) for t in result.times],
            "retries": int(result.retries),
            "verified": bool(result.verified),
        }
    return {
        "times": [float(t) for t in result.times],
        "bytes_per_iteration": int(result.bytes_per_iteration),
        "n_links": int(result.n_links),
    }


def result_from_dict(scenario: Scenario, payload: Mapping[str, Any]):
    """Rebuild the native result object for ``scenario`` from a dict."""
    from ..bench.stats import summarize

    times = [float(t) for t in payload["times"]]
    if scenario.kind == KIND_BENCH:
        from ..bench.harness import BenchResult

        return BenchResult(
            spec=scenario.spec,
            times=times,
            stats=summarize(times),
            retries=int(payload["retries"]),
            verified=bool(payload["verified"]),
        )
    from ..apps.base import PatternResult

    return PatternResult(
        config=scenario.spec,
        times=times,
        stats=summarize(times),
        bytes_per_iteration=int(payload["bytes_per_iteration"]),
        n_links=int(payload["n_links"]),
    )


# -- grids -------------------------------------------------------------------

class ScenarioGrid:
    """Declarative cross-product of scenario axes.

    Parameters
    ----------
    kind:
        ``"bench"`` or ``"pattern"``.
    base:
        Fixed spec fields shared by every point (e.g. ``iterations``,
        ``params``, ``cvars``).
    axes:
        Ordered mapping of spec field → sequence of values.  Expansion
        is row-major in declaration order: the last axis varies fastest.
    backend:
        Execution backend tag stamped on every scenario of the grid.

    Example
    -------
    >>> grid = ScenarioGrid(
    ...     "bench",
    ...     base={"iterations": 3},
    ...     axes={"approach": ["pt2pt_single", "pt2pt_part"],
    ...           "total_bytes": [1024, 4096]},
    ... )
    >>> len(grid)
    4
    """

    def __init__(
        self,
        kind: str,
        base: Mapping[str, Any] | None = None,
        axes: Mapping[str, Sequence[Any]] | None = None,
        backend: str = DEFAULT_BACKEND,
    ):
        if kind not in (KIND_BENCH, KIND_PATTERN):
            raise ValueError(f"unknown scenario kind {kind!r}")
        self.kind = kind
        self.backend = backend
        self.base: Dict[str, Any] = dict(base or {})
        self.axes: Dict[str, Sequence[Any]] = dict(axes or {})
        for name, values in self.axes.items():
            if name in self.base:
                raise ValueError(f"axis {name!r} also fixed in base")
            if not len(values):
                raise ValueError(f"axis {name!r} is empty")

    def points(self) -> Iterator[Tuple[Dict[str, Any], "Scenario"]]:
        """Yield ``(axis_assignment, scenario)`` pairs in grid order."""
        spec_type = _spec_types()[self.kind]
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            assignment = dict(zip(names, combo))
            spec = spec_type(**{**self.base, **assignment})
            yield assignment, Scenario(
                kind=self.kind, spec=spec, backend=self.backend
            )

    def expand(self) -> List[Scenario]:
        """All scenarios of the grid, in deterministic row-major order."""
        return [scenario for _, scenario in self.points()]

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    # -- index addressing ----------------------------------------------------
    # Expansion order is row-major (last axis fastest), so a grid point
    # is addressed by one integer: its position in expand().  The
    # campaign pipeline leans on this — a million-point campaign stores
    # (index, result) rows instead of a content hash per point, and any
    # point decodes back without expanding the grid.

    def _strides(self) -> Dict[str, int]:
        strides: Dict[str, int] = {}
        stride = 1
        for name in reversed(list(self.axes)):
            strides[name] = stride
            stride *= len(self.axes[name])
        return strides

    def assignment_at(self, index: int) -> Dict[str, Any]:
        """The axis assignment of grid point ``index`` (mixed-radix
        decode of the row-major position; O(axes), not O(grid))."""
        if not 0 <= index < len(self):
            raise IndexError(f"grid index {index} out of range")
        strides = self._strides()
        return {
            name: values[(index // strides[name]) % len(values)]
            for name, values in self.axes.items()
        }

    def scenario_at(self, index: int) -> "Scenario":
        """Grid point ``index`` as a full :class:`Scenario`."""
        spec_type = _spec_types()[self.kind]
        spec = spec_type(**{**self.base, **self.assignment_at(index)})
        return Scenario(kind=self.kind, spec=spec, backend=self.backend)

    def axis_columns(self, indices) -> Dict[str, Any]:
        """Axis values for many indices at once, as numpy columns.

        The vectorized decode behind the campaign fast path: grid
        indices go straight to per-axis value arrays (``np.take`` over
        the axis value lists) without constructing a single spec object.
        """
        import numpy as np

        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) and (
            indices.min() < 0 or indices.max() >= len(self)
        ):
            raise IndexError("grid indices out of range")
        strides = self._strides()
        columns: Dict[str, Any] = {}
        for name, values in self.axes.items():
            digits = (indices // strides[name]) % len(values)
            columns[name] = np.take(np.asarray(values), digits)
        return columns

    def validate(self) -> None:
        """Fail fast on bad axis/base values: build one spec per axis
        value (holding the other axes at their first value), so every
        value passes through the spec dataclass's own ``__post_init__``
        validation before a single point executes."""
        spec_type = _spec_types()[self.kind]
        first = {name: values[0] for name, values in self.axes.items()}
        spec_type(**{**self.base, **first})
        for name, values in self.axes.items():
            for value in values[1:]:
                spec_type(**{**self.base, **first, name: value})

    def axis_codes(self, name: str, indices) -> Any:
        """Positions into ``axes[name]`` for many indices at once — the
        factorized form of :meth:`axis_columns` for categorical axes
        (no value materialization, no string hashing)."""
        import numpy as np

        indices = np.asarray(indices, dtype=np.int64)
        return (indices // self._strides()[name]) % len(self.axes[name])

    def axis_codes_for_indices(self, indices) -> Dict[str, Any]:
        """Codes for *every* axis over many indices at once.

        The fully vectorized row-major decode: one ``//`` + ``%`` over
        the whole index array per axis, replacing the per-point digit
        loop everywhere a batch of indices needs its assignments
        (columnar query filters, ``export --format npz``, slice
        reports).  Returns ``{axis name: int64 code array}``; axis
        values are ``axes[name][code]``.
        """
        import numpy as np

        indices = np.asarray(indices, dtype=np.int64)
        strides = self._strides()
        return {
            name: (indices // strides[name]) % len(values)
            for name, values in self.axes.items()
        }

    def kernel_columns(
        self,
        indices,
        fields: Sequence[str],
        categorical: Sequence[str] = (),
    ) -> Dict[str, Any]:
        """Kernel-ready columns for ``fields`` over many grid indices.

        The one decode both campaign fast paths (bench *and* pattern)
        share: each requested field becomes either a decoded axis
        column (:meth:`axis_columns`), a broadcastable base scalar, or
        — for ``categorical`` fields — a ``(values, codes)`` pair with
        the codes taken straight from the grid digits
        (:meth:`axis_codes`: no value materialization, no string
        hashing over the batch).  Fields in neither the axes nor the
        base are omitted, so the kernels apply their spec defaults.
        """
        import numpy as np

        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) and (
            indices.min() < 0 or indices.max() >= len(self)
        ):
            raise IndexError("grid indices out of range")
        strides = self._strides()
        columns: Dict[str, Any] = {}
        for name in fields:
            if name in self.axes:
                values = self.axes[name]
                digits = (indices // strides[name]) % len(values)
                if name in categorical:
                    columns[name] = (list(values), digits)
                else:
                    columns[name] = np.take(np.asarray(values), digits)
            elif name in self.base:
                columns[name] = self.base[name]
        return columns

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe declarative form (the campaign-header grid spec).

        ``params``/``cvars`` dataclasses in ``base`` are expanded to
        dicts; axis values must already be JSON scalars.
        """
        base: Dict[str, Any] = {}
        for name, value in self.base.items():
            if dataclasses.is_dataclass(value):
                base[name] = dataclasses.asdict(value)
            else:
                base[name] = value
        for name, values in self.axes.items():
            for value in values:
                if not isinstance(value, (str, int, float, bool)):
                    raise TypeError(
                        f"axis {name!r} value {value!r} is not a JSON "
                        f"scalar; campaign grids need serializable axes"
                    )
        return {
            "schema": GRID_SCHEMA,
            "kind": self.kind,
            "backend": self.backend,
            "base": base,
            # Expansion order is part of the grid's identity (it IS
            # the index mapping); the list carries it through any
            # key-sorting serializer, the dict alone would not.
            "axis_order": list(self.axes),
            "axes": {name: list(values) for name, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioGrid":
        """Inverse of :meth:`to_dict`."""
        from ..mpi import Cvars
        from ..net import SystemParams

        if payload.get("schema") not in _GRID_SCHEMAS:
            raise ValueError(
                f"unrecognized grid schema {payload.get('schema')!r}"
            )
        base = dict(payload.get("base", {}))
        if "params" in base and isinstance(base["params"], Mapping):
            base["params"] = SystemParams(**base["params"])
        if "cvars" in base and isinstance(base["cvars"], Mapping):
            base["cvars"] = Cvars(**base["cvars"])
        axes_payload = payload.get("axes", {})
        order = payload.get("axis_order")
        if order is None:
            order = list(axes_payload)
        elif sorted(order) != sorted(axes_payload):
            raise ValueError(
                f"axis_order {order!r} does not match axes "
                f"{sorted(axes_payload)!r}"
            )
        return cls(
            kind=payload["kind"],
            base=base,
            axes={name: list(axes_payload[name]) for name in order},
            backend=payload.get("backend", DEFAULT_BACKEND),
        )

    def canonical_json(self) -> str:
        """Canonical JSON of the declarative form (the hash input)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """Stable SHA-256 identifying this grid (kind, base, axes,
        backend) — the campaign identity every segment is tagged with."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        dims = "x".join(str(len(v)) for v in self.axes.values()) or "1"
        return f"<ScenarioGrid {self.kind} {dims} ({len(self)} points)>"
