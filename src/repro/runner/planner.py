"""Chunked execution planning: batches, not points, are the unit of work.

The executor historically submitted one pool task per scenario, so every
point paid its own fork/pickle/IPC round trip — measurable enough that
``BENCH_runner.json`` once recorded the parallel path *losing* to serial
on small grids.  The planner fixes the granularity:

* **inline backends** (the analytic model: microseconds per point) are
  collapsed into one chunk per backend and handed to
  :meth:`~repro.backends.base.Backend.run_batch` in-process — the whole
  chunk evaluates through the vectorized kernel in a few array ops;
* **pooled backends** (the simulator: seconds per point) are split into
  contiguous chunks sized so each worker gets a few chunks to balance
  load while IPC amortizes over many points;
* **tiny grids fall back to serial** ("auto" policy): when there are
  fewer pooled points than two per worker — or only one usable CPU —
  the pool's fork overhead cannot pay for itself, so the plan runs
  everything in-process.

A plan is pure data (no execution); the executor consumes it, which
keeps the policy unit-testable without ever spawning a process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Chunk",
    "ExecutionPlan",
    "available_cpus",
    "plan_execution",
    "auto_chunk_size",
    "auto_submit_window",
    "auto_writer_depth",
    "pool_workers",
    "shard_plan",
]

#: Valid pool policies: "auto" (serial fallback for tiny grids / single
#: CPU), "always" (force the pool whenever workers > 1), "never".
POOL_POLICIES = ("auto", "always", "never")

#: Upper bound on points per pooled chunk: keeps streaming increments
#: (store writes, progress) reasonably fine-grained even on huge grids.
MAX_CHUNK_POINTS = 32

#: Target number of chunks handed to each worker: > 1 so stragglers
#: rebalance, small so IPC stays amortized.
CHUNKS_PER_WORKER = 4


def auto_chunk_size(n_points: int, workers: int) -> int:
    """Points per pooled chunk when the caller does not pin one."""
    if n_points <= 0:
        return 1
    target = -(-n_points // (max(1, workers) * CHUNKS_PER_WORKER))
    return max(1, min(MAX_CHUNK_POINTS, target))


def auto_submit_window(workers: int) -> int:
    """Chunks kept in flight by the campaign submit-ahead pipeline.

    Two chunks per worker: one being executed plus one queued behind
    it, so the pool never drains at a chunk boundary while the consumer
    writes segments — and the in-flight result backlog (which the
    ordered consumer must buffer) stays bounded.
    """
    return max(2, 2 * max(1, workers))


#: Chunks the async segment writer may hold queued (plus the one it is
#: writing).  One compute thread feeds one writer thread, so a short
#: queue already decouples the two; each queued analytic chunk pins its
#: column arrays (~8–24 bytes/point), so deep queues only cost memory.
WRITER_QUEUE_DEPTH = 4


def auto_writer_depth(chunk_points: int) -> int:
    """Queue depth for the campaign's async segment writer.

    The default keeps at most ``WRITER_QUEUE_DEPTH`` chunks of column
    arrays pinned; huge chunks (>= 2**18 points) drop to a depth of 2 —
    at that size the queue is pure memory with no extra overlap to buy.
    """
    if chunk_points >= (1 << 18):
        return 2
    return WRITER_QUEUE_DEPTH


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; cgroup limits and
    ``taskset`` masks (CI runners, containers) restrict the process to
    fewer.  ``sched_getaffinity`` sees the real budget where the
    platform exposes it — sizing pools or shard counts past it just
    multiplies context switches.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def pool_workers(
    n_points: int,
    jobs: int,
    pool: str = "auto",
    cpu_count: Optional[int] = None,
) -> Tuple[int, bool]:
    """``(workers, use_pool)`` for a purely pooled workload — the one
    owner of the worker-count / pool-fallback policy.

    :func:`plan_execution` applies it to a batch's pooled portion;
    callers that schedule their own chunks (the campaign submit-ahead
    pipeline spans *many* executor-sized batches) pin one decision up
    front rather than re-deciding per chunk.
    """
    if pool not in POOL_POLICIES:
        raise ValueError(
            f"unknown pool policy {pool!r}; choose from {POOL_POLICIES}"
        )
    cpus = available_cpus() if cpu_count is None else cpu_count
    # More workers than cores cannot help a CPU-bound simulation; more
    # workers than points just forks idle processes.
    workers = max(1, min(jobs, cpus, n_points))
    if pool == "always":
        workers = max(1, min(jobs, n_points))
    elif pool == "auto" and n_points < 2 * workers:
        # Fewer than two points per worker: shrink the pool so chunk
        # IPC still amortizes, rather than abandoning parallelism —
        # a grid too small to feed even two workers runs serial.
        workers = max(1, n_points // 2)
    return workers, workers > 1 and pool != "never"


@dataclass(frozen=True)
class Chunk:
    """A contiguous run of batch indices sharing one backend."""

    indices: Tuple[int, ...]
    backend: str
    inline: bool

    def __len__(self) -> int:
        return len(self.indices)


@dataclass
class ExecutionPlan:
    """Everything the executor needs to run a batch's cold points."""

    #: One chunk per inline backend (whole backend sub-batch at once).
    inline_chunks: List[Chunk] = field(default_factory=list)
    #: Pooled chunks in submission order.
    pool_chunks: List[Chunk] = field(default_factory=list)
    #: Worker processes the pooled portion should use.
    workers: int = 1
    #: Points per pooled chunk the plan was built with.
    chunk_size: int = 1
    #: True when the pooled chunks go to a multiprocessing pool; False
    #: means the auto-serial fallback (or an explicit "never") applies.
    use_pool: bool = False

    @property
    def pooled_points(self) -> int:
        return sum(len(c) for c in self.pool_chunks)

    @property
    def inline_points(self) -> int:
        return sum(len(c) for c in self.inline_chunks)


def plan_execution(
    batch: Sequence,
    pending: Sequence[int],
    jobs: int,
    chunk_size: Optional[int] = None,
    pool: str = "auto",
    cpu_count: Optional[int] = None,
) -> ExecutionPlan:
    """Partition the pending indices of ``batch`` into execution chunks.

    ``pool`` selects the fallback policy (see :data:`POOL_POLICIES`);
    ``cpu_count`` is injectable for tests and defaults to the machine's.
    """
    from ..backends import get_backend

    if pool not in POOL_POLICIES:
        raise ValueError(
            f"unknown pool policy {pool!r}; choose from {POOL_POLICIES}"
        )
    inline_by_backend: Dict[str, List[int]] = {}
    pooled_by_backend: Dict[str, List[int]] = {}
    n_pooled = 0
    for i in pending:
        backend = batch[i].backend
        if get_backend(backend).inline:
            inline_by_backend.setdefault(backend, []).append(i)
        else:
            pooled_by_backend.setdefault(backend, []).append(i)
            n_pooled += 1

    plan = ExecutionPlan()
    for backend, indices in inline_by_backend.items():
        plan.inline_chunks.append(
            Chunk(indices=tuple(indices), backend=backend, inline=True)
        )

    plan.workers, plan.use_pool = pool_workers(
        n_pooled, jobs, pool, cpu_count=cpu_count
    )
    plan.chunk_size = (
        auto_chunk_size(n_pooled, plan.workers)
        if chunk_size is None
        else max(1, int(chunk_size))
    )
    for backend, pooled in pooled_by_backend.items():
        for start in range(0, len(pooled), plan.chunk_size):
            plan.pool_chunks.append(
                Chunk(
                    indices=tuple(pooled[start:start + plan.chunk_size]),
                    backend=backend,
                    inline=False,
                )
            )
    # Chunking decisions as observables (no-ops unless a telemetry
    # registry is active): the profile report shows the plan the
    # executor actually ran under.
    from .. import telemetry

    if telemetry.active_registry() is not None:
        telemetry.count("planner.plans")
        telemetry.count("planner.chunks.inline", len(plan.inline_chunks))
        telemetry.count("planner.chunks.pooled", len(plan.pool_chunks))
        telemetry.gauge("planner.workers", plan.workers)
        telemetry.gauge("planner.chunk_size", plan.chunk_size)
        telemetry.gauge("planner.use_pool", int(plan.use_pool))
    return plan


def shard_plan(
    grid,
    n_shards: int,
    completed: Sequence[Tuple[int, int]] = (),
) -> List[List[Tuple[int, int]]]:
    """Split a grid's missing points into ``n_shards`` contiguous slabs.

    ``grid`` is a :class:`~repro.runner.scenario.ScenarioGrid` (or a
    bare point count); ``completed`` is a sorted list of half-open
    ``[start, stop)`` index ranges already present in the target store
    (``CampaignStore.completed_ranges()``).  The remaining points are
    split as evenly as possible — shard sizes differ by at most one
    point — and each shard gets ranges *contiguous in missing-index
    space*, so a shard's work is a handful of dense slabs even when the
    completed set is fragmented.  Trailing shards may come out empty
    when there are fewer missing points than shards.

    The result is pure data: every shard entry is a list of half-open
    ``[start, stop)`` grid-index ranges, directly consumable by
    ``run_campaign(..., ranges=shard)`` or serialisable onto a
    ``campaign shard run --ranges`` command line for another machine.
    """
    n_points = grid if isinstance(grid, int) else len(grid)
    if n_points < 0:
        raise ValueError(f"negative point count {n_points}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    # Missing ranges = [0, n_points) minus the completed ranges.
    missing: List[Tuple[int, int]] = []
    cursor = 0
    for start, stop in completed:
        if not (0 <= start < stop <= n_points):
            raise ValueError(
                f"completed range [{start}, {stop}) outside grid "
                f"[0, {n_points})"
            )
        if start < cursor:
            raise ValueError(
                "completed ranges must be sorted and non-overlapping"
            )
        if cursor < start:
            missing.append((cursor, start))
        cursor = stop
    if cursor < n_points:
        missing.append((cursor, n_points))

    total = sum(stop - start for start, stop in missing)
    base, extra = divmod(total, n_shards)
    shards: List[List[Tuple[int, int]]] = []
    it = iter(missing)
    current: Optional[Tuple[int, int]] = next(it, None)
    for i in range(n_shards):
        want = base + (1 if i < extra else 0)
        shard: List[Tuple[int, int]] = []
        while want > 0 and current is not None:
            start, stop = current
            take = min(want, stop - start)
            shard.append((start, start + take))
            want -= take
            current = (start + take, stop) if start + take < stop else next(it, None)
        shards.append(shard)
    return shards
