"""Benchmark harness reproducing the paper's measurement methodology."""

from .approaches import APPROACHES, Approach, ApproachConfig
from .harness import BenchResult, BenchSpec, build_world, run_benchmark
from .reporting import format_bandwidth_table, format_ratio_line, format_us_table
from .stats import SampleStats, needs_rerun, summarize
from .sweep import SweepResult, size_grid, sweep_approaches, sweep_sizes

__all__ = [
    "APPROACHES",
    "Approach",
    "ApproachConfig",
    "BenchSpec",
    "BenchResult",
    "run_benchmark",
    "build_world",
    "SampleStats",
    "summarize",
    "needs_rerun",
    "size_grid",
    "sweep_sizes",
    "sweep_approaches",
    "SweepResult",
    "format_us_table",
    "format_bandwidth_table",
    "format_ratio_line",
]
