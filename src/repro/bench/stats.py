"""Measurement statistics: the paper's confidence-interval methodology.

§4 of the paper: 150 iterations + 1 warm-up; results reported as the
mean with a 90 % confidence interval assuming a Student's
t-distribution; a measurement is *rerun* when the CI half-width exceeds
5 % of the mean, up to 50 retries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from scipy import stats as _scipy_stats

__all__ = ["SampleStats", "summarize", "needs_rerun"]

#: The paper's confidence level.
CONFIDENCE = 0.90
#: The paper's acceptance rule: CI half-width <= 5 % of the mean.
CI_FRACTION = 0.05
#: The paper's retry cap.
MAX_RETRIES = 50


@dataclass(frozen=True)
class SampleStats:
    """Summary of one measurement's iteration times."""

    n: int
    mean: float
    std: float
    ci_half: float
    minimum: float
    maximum: float

    @property
    def relative_ci(self) -> float:
        """CI half-width as a fraction of the mean (the 5 % rule input)."""
        if self.mean == 0:
            return 0.0
        return self.ci_half / self.mean


def summarize(samples: Sequence[float], confidence: float = CONFIDENCE) -> SampleStats:
    """Mean and Student-t confidence half-width of ``samples``."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return SampleStats(1, mean, 0.0, 0.0, mean, mean)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(var)
    if std == 0.0:
        return SampleStats(n, mean, 0.0, 0.0, min(samples), max(samples))
    ci_half = _t_critical(n - 1, confidence) * std / math.sqrt(n)
    return SampleStats(n, mean, std, ci_half, min(samples), max(samples))


@lru_cache(maxsize=1024)
def _t_critical(df: int, confidence: float) -> float:
    """Cached Student-t critical value (the ppf call dominates
    ``summarize`` on small sample sets otherwise)."""
    return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=df))


def needs_rerun(stats: SampleStats, ci_fraction: float = CI_FRACTION) -> bool:
    """The paper's rerun rule: CI half-width > ``ci_fraction`` of mean."""
    return stats.relative_ci > ci_fraction
