"""Parameter sweeps: message-size series for the paper's figures."""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from .harness import BenchResult, BenchSpec, run_benchmark

__all__ = ["size_grid", "sweep_sizes", "sweep_approaches", "SweepResult"]


def size_grid(
    min_bytes: int,
    max_bytes: int,
    points_per_decade: Optional[int] = None,
    multiple_of: int = 1,
) -> List[int]:
    """Logarithmic size grid, each entry rounded to ``multiple_of``.

    Power-of-two based: returns sizes ``multiple_of * 2^k`` covering
    [min_bytes, max_bytes], matching the paper's log-scale x axes.

    .. deprecated:: 1.1
        ``points_per_decade`` was never honored — the grid is strictly
        per-octave.  Passing it now raises a :class:`DeprecationWarning`
        and still has no effect; it will be removed in a future release.
    """
    if points_per_decade is not None:
        warnings.warn(
            "size_grid(points_per_decade=...) has no effect: the grid is "
            "per-octave (powers of two); the parameter will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
    if min_bytes < 1 or max_bytes < min_bytes:
        raise ValueError("need 1 <= min_bytes <= max_bytes")
    if multiple_of < 1:
        raise ValueError("multiple_of must be >= 1")
    sizes: List[int] = []
    size = multiple_of
    while size < min_bytes:
        size *= 2
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    if not sizes:
        raise ValueError("empty size grid")
    return sizes


class SweepResult:
    """Series of benchmark results keyed by (approach, total_bytes)."""

    def __init__(self) -> None:
        self._results: Dict[tuple, BenchResult] = {}

    def add(self, result: BenchResult) -> None:
        key = (result.spec.approach, result.spec.total_bytes)
        self._results[key] = result

    def get(self, approach: str, total_bytes: int) -> BenchResult:
        return self._results[(approach, total_bytes)]

    def sizes(self, approach: str) -> List[int]:
        return sorted(
            size for (a, size) in self._results if a == approach
        )

    def approaches(self) -> List[str]:
        return sorted({a for (a, _) in self._results})

    def series_us(self, approach: str) -> List[tuple]:
        """(size, mean_us, ci_half_us) series for one approach."""
        return [
            (
                size,
                self.get(approach, size).mean_us,
                self.get(approach, size).stats.ci_half * 1e6,
            )
            for size in self.sizes(approach)
        ]

    def series_bandwidth(self, approach: str) -> List[tuple]:
        """(size, GB/s) series for one approach (Fig. 8's metric)."""
        return [
            (size, self.get(approach, size).bandwidth_gbs)
            for size in self.sizes(approach)
        ]

    def ratio(self, approach: str, baseline: str, total_bytes: int) -> float:
        """Time ratio approach/baseline at one size (penalty factor)."""
        return (
            self.get(approach, total_bytes).mean
            / self.get(baseline, total_bytes).mean
        )

    def __len__(self) -> int:
        return len(self._results)


def sweep_sizes(
    base: BenchSpec,
    sizes: Sequence[int],
    out: Optional[SweepResult] = None,
) -> SweepResult:
    """Run ``base`` across message sizes."""
    result = out if out is not None else SweepResult()
    for size in sizes:
        result.add(run_benchmark(replace(base, total_bytes=size)))
    return result


def sweep_approaches(
    base: BenchSpec,
    approaches: Iterable[str],
    sizes: Sequence[int],
) -> SweepResult:
    """Run several approaches across message sizes (one figure's data)."""
    result = SweepResult()
    for name in approaches:
        sweep_sizes(replace(base, approach=name), sizes, out=result)
    return result
