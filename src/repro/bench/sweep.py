"""Parameter sweeps: message-size series for the paper's figures.

Sweeps are thin grid builders over the unified scenario runner
(:mod:`repro.runner`): they expand ``(approach, size)`` grids into
:class:`BenchSpec` scenarios, submit the whole batch at once (so
``jobs > 1`` fans the grid out across cores), and collect the results
into a :class:`SweepResult` keyed for the figure reports.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from .harness import BenchResult, BenchSpec

__all__ = ["size_grid", "sweep_sizes", "sweep_approaches", "SweepResult"]


def size_grid(
    min_bytes: int,
    max_bytes: int,
    multiple_of: int = 1,
) -> List[int]:
    """Logarithmic size grid, each entry rounded to ``multiple_of``.

    Power-of-two based: returns sizes ``multiple_of * 2^k`` covering
    [min_bytes, max_bytes], matching the paper's log-scale x axes.
    """
    if min_bytes < 1 or max_bytes < min_bytes:
        raise ValueError("need 1 <= min_bytes <= max_bytes")
    if multiple_of < 1:
        raise ValueError("multiple_of must be >= 1")
    sizes: List[int] = []
    size = multiple_of
    while size < min_bytes:
        size *= 2
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    if not sizes:
        raise ValueError("empty size grid")
    return sizes


class SweepResult:
    """Series of benchmark results keyed by (approach, total_bytes)."""

    def __init__(self) -> None:
        self._results: Dict[tuple, BenchResult] = {}

    def add(self, result: BenchResult) -> None:
        key = (result.spec.approach, result.spec.total_bytes)
        self._results[key] = result

    def add_as(self, label: str, result: BenchResult) -> None:
        """Record a result under an explicit label (e.g. a cvar-variant
        key like ``pt2pt_part(aggr=512)``) instead of its approach name."""
        self._results[(label, result.spec.total_bytes)] = result

    def get(self, approach: str, total_bytes: int) -> BenchResult:
        return self._results[(approach, total_bytes)]

    def sizes(self, approach: str) -> List[int]:
        return sorted(
            size for (a, size) in self._results if a == approach
        )

    def approaches(self) -> List[str]:
        return sorted({a for (a, _) in self._results})

    def series_us(self, approach: str) -> List[tuple]:
        """(size, mean_us, ci_half_us) series for one approach."""
        return [
            (
                size,
                self.get(approach, size).mean_us,
                self.get(approach, size).stats.ci_half * 1e6,
            )
            for size in self.sizes(approach)
        ]

    def series_bandwidth(self, approach: str) -> List[tuple]:
        """(size, GB/s) series for one approach (Fig. 8's metric)."""
        return [
            (size, self.get(approach, size).bandwidth_gbs)
            for size in self.sizes(approach)
        ]

    def ratio(self, approach: str, baseline: str, total_bytes: int) -> float:
        """Time ratio approach/baseline at one size (penalty factor)."""
        return (
            self.get(approach, total_bytes).mean
            / self.get(baseline, total_bytes).mean
        )

    def __len__(self) -> int:
        return len(self._results)


def sweep_sizes(
    base: BenchSpec,
    sizes: Sequence[int],
    out: Optional[SweepResult] = None,
    jobs: int = 1,
    store=None,
    resume: bool = False,
    backend: str = "sim",
) -> SweepResult:
    """Run ``base`` across message sizes (one runner submission)."""
    from ..runner import run_specs

    result = out if out is not None else SweepResult()
    specs = [replace(base, total_bytes=size) for size in sizes]
    for r in run_specs(
        specs, jobs=jobs, store=store, resume=resume, backend=backend
    ):
        result.add(r)
    return result


def sweep_approaches(
    base: BenchSpec,
    approaches: Iterable[str],
    sizes: Sequence[int],
    jobs: int = 1,
    store=None,
    resume: bool = False,
    backend: str = "sim",
) -> SweepResult:
    """Run several approaches across message sizes (one figure's data).

    The full approaches × sizes grid goes to the runner as one batch, so
    ``jobs > 1`` parallelizes across the whole figure, not one series;
    ``backend="analytic"`` trades the simulator for the closed-form
    model (microseconds per point).
    """
    specs = [
        replace(base, approach=name, total_bytes=size)
        for name in approaches
        for size in sizes
    ]
    from ..runner import run_specs

    result = SweepResult()
    for r in run_specs(
        specs, jobs=jobs, store=store, resume=resume, backend=backend
    ):
        result.add(r)
    return result
