"""The pipelined-communication benchmark harness (paper Fig. 3).

Drives any registered approach through the template:

1. both ranks initialize persistently (untimed);
2. per iteration: inter-rank ``MPI_Barrier`` (*tik*), master ``start``
   + thread barrier, per-thread compute + ``ready`` per partition,
   thread barrier, master ``wait`` (*tok* on the receiver marks the end);
3. the metric is **time-to-solution minus compute time** (§2.1): from
   the sender's start operation to the receiver's wait completion,
   minus the longest per-thread compute time of the iteration.

Measurement methodology follows §4: warm-up iterations are discarded,
the mean is reported with a 90 % Student-t confidence interval, and a
run whose CI half-width exceeds 5 % of the mean is rerun with a fresh
seed (up to 50 times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..mpi import Cvars, MPIWorld
from ..net import MELUXINA, SystemParams
from ..threads import ComputeModel, FixedDelayModel, NoDelayModel, ThreadTeam
from .approaches import APPROACHES, Approach, ApproachConfig
from .stats import CI_FRACTION, MAX_RETRIES, SampleStats, needs_rerun, summarize

__all__ = ["BenchSpec", "BenchResult", "run_benchmark", "build_world"]


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark point: an approach under a configuration."""

    approach: str
    total_bytes: int
    n_threads: int = 1
    theta: int = 1
    #: Measured iterations (paper: 150; the default keeps simulated
    #: sweeps fast — deterministic runs have zero variance anyway).
    iterations: int = 30
    warmup: int = 1
    #: Fixed delay rate (µs/MB) applied to the last partition (§4.3);
    #: 0 means all partitions ready immediately.
    gamma_us_per_mb: float = 0.0
    #: Gaussian compute model (Appendix A): average rate µ in µs/MB;
    #: 0 disables.  Takes precedence over ``gamma_us_per_mb``.
    gaussian_mu_us_per_mb: float = 0.0
    #: System-noise ε of the Gaussian model.
    gaussian_epsilon: float = 0.0
    #: Algorithmic imbalance δ of the Gaussian model.
    gaussian_delta: float = 0.0
    params: SystemParams = MELUXINA
    cvars: Cvars = field(default_factory=Cvars)
    seed: int = 0
    #: Carry + check real payloads (slower; used by integration tests).
    verify: bool = False
    #: Retries under the 5 % CI rule (0 disables the rule).
    max_retries: int = 0
    ci_fraction: float = CI_FRACTION

    def __post_init__(self) -> None:
        if self.approach not in APPROACHES:
            raise KeyError(
                f"unknown approach {self.approach!r}; "
                f"choose from {sorted(APPROACHES)}"
            )
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError("need iterations >= 1 and warmup >= 0")

    def compute_model(self, world: Optional[MPIWorld] = None) -> ComputeModel:
        """Build the compute model; a world provides the seeded RNG for
        the Gaussian (Appendix-A) variant."""
        if self.gaussian_mu_us_per_mb > 0:
            from ..threads import GaussianComputeModel

            rng = world.rng.stream("bench-compute") if world is not None else None
            return GaussianComputeModel(
                mu=self.gaussian_mu_us_per_mb * 1e-6 / 1e6,
                epsilon=self.gaussian_epsilon,
                delta=self.gaussian_delta,
                rng=rng,
            )
        if self.gamma_us_per_mb > 0:
            return FixedDelayModel.from_us_per_mb(self.gamma_us_per_mb)
        return NoDelayModel()


@dataclass
class BenchResult:
    """Outcome of one benchmark point."""

    spec: BenchSpec
    times: List[float]  # post-warmup per-iteration times (seconds)
    stats: SampleStats
    retries: int
    verified: bool

    @property
    def mean(self) -> float:
        """Mean communication time (seconds)."""
        return self.stats.mean

    @property
    def mean_us(self) -> float:
        """Mean communication time (µs, the paper's unit)."""
        return self.stats.mean * 1e6

    @property
    def bandwidth(self) -> float:
        """Perceived bandwidth in B/s (Fig. 8's metric)."""
        return self.spec.total_bytes / self.stats.mean if self.stats.mean else 0.0

    @property
    def bandwidth_gbs(self) -> float:
        """Perceived bandwidth in GB/s."""
        return self.bandwidth / 1e9


class _Recorder:
    """Per-iteration timestamps and compute totals."""

    def __init__(self, total_iters: int, n_threads: int):
        self.t_start = [0.0] * total_iters
        self.t_end = [0.0] * total_iters
        self.compute = [
            [0.0] * n_threads for _ in range(total_iters)
        ]

    def removal(self, it: int) -> float:
        """Compute-time removal: the slowest thread's total compute."""
        return max(self.compute[it])

    def iteration_time(self, it: int) -> float:
        return self.t_end[it] - self.t_start[it] - self.removal(it)


def build_world(spec: BenchSpec, seed: Optional[int] = None) -> MPIWorld:
    """Construct the two-rank world for a spec (AM fallback honored)."""
    cvars = spec.cvars
    if APPROACHES[spec.approach].requires_am:
        cvars = cvars.with_updates(part_force_am=True)
    if spec.verify and not cvars.verify_payloads:
        cvars = cvars.with_updates(verify_payloads=True)
    return MPIWorld(
        n_ranks=2,
        params=spec.params,
        cvars=cvars,
        seed=spec.seed if seed is None else seed,
    )


def _sender_thread(world, approach: Approach, team: ThreadTeam,
                   compute: ComputeModel, rec: _Recorder, tid: int,
                   total_iters: int):
    cfg = approach.config
    comm = approach.s_comm
    if tid == 0:
        yield from approach.s_init()
    yield from team.barrier()
    yield from approach.s_thread_init(tid)
    yield from team.barrier()
    for it in range(total_iters):
        if tid == 0:
            yield from comm.barrier()  # tik
            rec.t_start[it] = world.env.now
            yield from approach.s_start()
        yield from team.barrier()
        for p in cfg.partitions_of(tid):
            dt = compute.compute_time(
                tid, p, cfg.part_bytes, cfg.n_threads, cfg.theta
            )
            if dt > 0:
                yield world.env.timeout(dt)
            rec.compute[it][tid] += dt
        # Partitions are marked ready in order after their compute.
        for p in cfg.partitions_of(tid):
            yield from approach.s_ready(tid, p)
        yield from team.barrier()
        if tid == 0:
            yield from approach.s_wait()
    yield from team.barrier()
    if tid == 0:
        yield from approach.s_free()


def _receiver_thread(world, approach: Approach, team: ThreadTeam,
                     rec: _Recorder, tid: int, total_iters: int):
    cfg = approach.config
    comm = approach.r_comm
    if tid == 0:
        yield from approach.r_init()
    yield from team.barrier()
    yield from approach.r_thread_init(tid)
    yield from team.barrier()
    for it in range(total_iters):
        if tid == 0:
            yield from comm.barrier()  # tik
            yield from approach.r_start()
        yield from team.barrier()
        for p in cfg.partitions_of(tid):
            yield from approach.r_probe(tid, p)
        yield from team.barrier()
        if tid == 0:
            yield from approach.r_wait()
            rec.t_end[it] = world.env.now  # tok
    yield from team.barrier()
    if tid == 0:
        yield from approach.r_free()


def _single_run(spec: BenchSpec, seed: int) -> BenchResult:
    world = build_world(spec, seed=seed)
    cfg = ApproachConfig(
        total_bytes=spec.total_bytes,
        n_threads=spec.n_threads,
        theta=spec.theta,
    )
    approach = APPROACHES[spec.approach](world, cfg)
    compute = spec.compute_model(world)
    total = spec.iterations + spec.warmup
    rec = _Recorder(total, spec.n_threads)
    barrier_cost = spec.params.barrier_time(spec.n_threads)
    s_team = ThreadTeam(world.env, spec.n_threads, barrier_cost)
    r_team = ThreadTeam(world.env, spec.n_threads, barrier_cost)
    for tid in range(spec.n_threads):
        world.launch(
            0, _sender_thread(world, approach, s_team, compute, rec, tid, total)
        )
        world.launch(
            1, _receiver_thread(world, approach, r_team, rec, tid, total)
        )
    world.run()
    times = [rec.iteration_time(it) for it in range(spec.warmup, total)]
    return BenchResult(
        spec=spec,
        times=times,
        stats=summarize(times),
        retries=0,
        verified=approach.verify(),
    )


def run_benchmark(spec: BenchSpec) -> BenchResult:
    """Run one benchmark point with the paper's rerun rule."""
    result = _single_run(spec, spec.seed)
    retries = 0
    while (
        retries < min(spec.max_retries, MAX_RETRIES)
        and needs_rerun(result.stats, spec.ci_fraction)
    ):
        retries += 1
        result = _single_run(spec, spec.seed + retries)
    result.retries = retries
    return result
