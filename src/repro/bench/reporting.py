"""Report formatting: the tables and series the paper's figures plot."""

from __future__ import annotations

from typing import List, Optional, Sequence

from .sweep import SweepResult

__all__ = ["format_us_table", "format_bandwidth_table", "format_ratio_line"]


def _fmt_size(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):g}MiB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):g}KiB"
    return f"{nbytes}B"


def format_us_table(
    sweep: SweepResult,
    approaches: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """ASCII table of mean times (µs) by size × approach.

    This is the textual equivalent of the paper's time-vs-size figures
    (Figs. 4–7).
    """
    names = list(approaches) if approaches else sweep.approaches()
    sizes = sweep.sizes(names[0])
    width = max(18, max(len(n) for n in names) + 2)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'msg size':>10} | " + " | ".join(f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for size in sizes:
        cells = []
        for n in names:
            r = sweep.get(n, size)
            ci = r.stats.ci_half * 1e6
            cell = f"{r.mean_us:12.3f}±{ci:5.2f}"
            cells.append(f"{cell:>{width}}")
        lines.append(f"{_fmt_size(size):>10} | " + " | ".join(cells))
    return "\n".join(lines)


def format_bandwidth_table(
    sweep: SweepResult,
    approaches: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """ASCII table of perceived bandwidth (GB/s) by size × approach
    (Fig. 8's metric)."""
    names = list(approaches) if approaches else sweep.approaches()
    sizes = sweep.sizes(names[0])
    width = max(14, max(len(n) for n in names) + 2)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'msg size':>10} | " + " | ".join(f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for size in sizes:
        cells = []
        for n in names:
            bw = sweep.get(n, size).bandwidth_gbs
            cells.append(f"{bw:{width}.4f}")
        lines.append(f"{_fmt_size(size):>10} | " + " | ".join(cells))
    return "\n".join(lines)


def format_ratio_line(
    sweep: SweepResult,
    approach: str,
    baseline: str,
    total_bytes: int,
    note: str = "",
) -> str:
    """One-line penalty/gain factor report (the paper's ×N annotations)."""
    ratio = sweep.ratio(approach, baseline, total_bytes)
    label = f"{approach}/{baseline} @ {_fmt_size(total_bytes)}"
    suffix = f"  ({note})" if note else ""
    return f"{label}: x{ratio:.2f}{suffix}"
