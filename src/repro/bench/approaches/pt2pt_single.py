"""``Pt2Pt single``: bulk thread synchronization + one persistent send.

The baseline of every comparison in the paper (Figs. 4–8): threads
synchronize, then the master sends the whole buffer as one message
(Table 1: init ``MPI_Send_init``; wait ``MPI_Start`` + ``MPI_Wait``).
No early-bird effect, but also a single latency and zero contention —
which is why it wins at small sizes.
"""

from __future__ import annotations

from .base import Approach

__all__ = ["Pt2PtSingle"]


class Pt2PtSingle(Approach):
    name = "pt2pt_single"
    label = "Pt2Pt single"

    def s_init(self):
        self._sreq = self.s_comm.send_init(
            dest=1, tag=self.tag, nbytes=self.config.total_bytes,
            data=self.send_buffer,
        )
        return
        yield  # pragma: no cover

    def s_wait(self):
        # Bulk semantics: the send begins only after every thread passed
        # the pre-wait barrier.
        yield from self._sreq.start()
        yield from self._sreq.wait()

    def r_init(self):
        self._rreq = self.r_comm.recv_init(
            source=0, tag=self.tag, nbytes=self.config.total_bytes,
            buffer=self.recv_buffer,
        )
        return
        yield  # pragma: no cover

    def r_start(self):
        yield from self._rreq.start()

    def r_wait(self):
        yield from self._rreq.wait()
