"""``Pt2Pt many``: one message per partition from its owning thread.

The traditional hand-rolled pipelined pattern (§2.3.2): every thread
duplicates the communicator (mapping it to its own VCI when available —
Zambre et al. [14]) and sends each of its partitions as soon as it is
ready.  This is the approach the paper recommends for many-thread,
performance-critical codes (§4.2.3), at the cost of user-code
complexity the partitioned API exists to avoid.
"""

from __future__ import annotations

from typing import Dict

from .base import Approach

__all__ = ["Pt2PtMany"]


class Pt2PtMany(Approach):
    name = "pt2pt_many"
    label = "Pt2Pt many"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._s_comms: Dict[int, object] = {}
        self._r_comms: Dict[int, object] = {}
        self._s_reqs: Dict[int, object] = {}
        self._r_reqs: Dict[int, object] = {}

    # -- sender ------------------------------------------------------------
    def s_thread_init(self, thread_id: int):
        comm = yield from self.s_comm.dup(key=thread_id)
        self._s_comms[thread_id] = comm
        cfg = self.config
        for p in cfg.partitions_of(thread_id):
            data = None
            if self.send_buffer is not None:
                data = self.send_buffer[
                    p * cfg.part_bytes : (p + 1) * cfg.part_bytes
                ]
            req = comm.send_init(
                dest=1, tag=self.tag + p, nbytes=cfg.part_bytes, data=data
            )
            self._s_reqs[p] = req

    def s_ready(self, thread_id: int, partition: int):
        # The owning thread injects its partition immediately (early bird).
        yield from self._s_reqs[partition].start()

    def s_wait(self):
        for p in sorted(self._s_reqs):
            yield from self._s_reqs[p].wait()

    # -- receiver -------------------------------------------------------------
    def r_thread_init(self, thread_id: int):
        comm = yield from self.r_comm.dup(key=thread_id)
        self._r_comms[thread_id] = comm
        cfg = self.config
        for p in cfg.partitions_of(thread_id):
            buf = None
            if self.recv_buffer is not None:
                buf = self.recv_buffer[
                    p * cfg.part_bytes : (p + 1) * cfg.part_bytes
                ]
            req = comm.recv_init(
                source=0, tag=self.tag + p, nbytes=cfg.part_bytes, buffer=buf
            )
            self._r_reqs[p] = req

    def r_start(self):
        # Receives are pre-posted for the whole iteration up front.
        for p in sorted(self._r_reqs):
            yield from self._r_reqs[p].start()

    def r_probe(self, thread_id: int, partition: int):
        self._r_reqs[partition].test()
        return
        yield  # pragma: no cover

    def r_wait(self):
        for p in sorted(self._r_reqs):
            yield from self._r_reqs[p].wait()
