"""``Pt2Pt part``: MPI 4.0 partitioned communication (improved and old).

The paper's subject: the sender initializes one partitioned request over
the whole buffer (Table 1: ``MPI_Psend_init`` / ``MPI_Start`` /
``MPI_Pready`` / ``MPI_Wait``), threads mark their partitions ready, the
receiver probes with ``MPI_Parrived``.

Two registry entries share this implementation:

* ``pt2pt_part`` — the improved tag-matched path (requires a world whose
  ``Cvars.part_force_am`` is False);
* ``pt2pt_part_old`` — the legacy single-AM path (build the world with
  ``Cvars(part_force_am=True)``); the benchmark driver does this
  automatically from the approach name.
"""

from __future__ import annotations

from .base import Approach

__all__ = ["Pt2PtPart", "Pt2PtPartOld"]


class Pt2PtPart(Approach):
    name = "pt2pt_part"
    label = "Pt2Pt part"
    #: Set by the driver when building the world for this approach.
    requires_am = False

    def s_init(self):
        cfg = self.config
        self._sreq = yield from self.s_comm.psend_init(
            dest=1,
            tag=self.tag,
            partitions=cfg.n_parts,
            nbytes=cfg.total_bytes,
            data=self.send_buffer,
        )

    def s_start(self):
        yield from self._sreq.start()

    def s_ready(self, thread_id: int, partition: int):
        yield from self._sreq.pready(partition, thread_id=thread_id)

    def s_wait(self):
        yield from self._sreq.wait()

    def s_free(self):
        self._sreq.free()
        return
        yield  # pragma: no cover

    def r_init(self):
        cfg = self.config
        self._rreq = yield from self.r_comm.precv_init(
            source=0,
            tag=self.tag,
            partitions=cfg.n_parts,
            nbytes=cfg.total_bytes,
            buffer=self.recv_buffer,
        )

    def r_start(self):
        yield from self._rreq.start()

    def r_probe(self, thread_id: int, partition: int):
        self._rreq.parrived(partition)
        return
        yield  # pragma: no cover

    def r_wait(self):
        yield from self._rreq.wait()

    def r_free(self):
        self._rreq.free()
        return
        yield  # pragma: no cover


class Pt2PtPartOld(Pt2PtPart):
    """The pre-improvement AM path (Fig. 4's ``Pt2Pt part - old``)."""

    name = "pt2pt_part_old"
    label = "Pt2Pt part - old"
    requires_am = True
