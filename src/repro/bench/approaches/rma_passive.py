"""RMA passive-target approaches (§2.3.3).

Both variants hold a ``MODE_NOCHECK`` lock for the job's lifetime (the
paper's choice to keep the receiver out of the lock synchronization) and
emulate the active pattern with explicit 0-byte exposure/completion
messages (Tables 1 and 2):

* sender start = ``MPI_Recv`` of the receiver's exposure token,
* thread ready = ``MPI_Put`` of the partition,
* sender wait = ``MPI_Win_flush`` (+ one per window for *many*) then an
  ``MPI_Send`` completion notification the receiver's wait blocks on.

``RMA single - passive`` shares one window among all threads (puts
contend on its VCI); ``RMA many - passive`` gives each thread its own
window over the entire buffer — more VCIs when available, but more
windows for the progress engine to scan on a single VCI (Fig. 5's
upward shift).
"""

from __future__ import annotations

from ...mpi import MODE_NOCHECK
from ...mpi.rma import win_create
from .base import Approach

__all__ = ["RmaSinglePassive", "RmaManyPassive"]

#: Tag for the 0-byte exposure and completion tokens.
TOKEN_TAG = 23


class _RmaPassiveBase(Approach):
    """Common passive-target scaffolding; ``n_windows`` differs."""

    def _n_windows(self) -> int:
        raise NotImplementedError

    def _window_of(self, thread_id: int):
        raise NotImplementedError

    # -- sender ----------------------------------------------------------------
    def s_init(self):
        # Table 1: MPI_Comm_dup (token channel) + MPI_Win_create +
        # MPI_Win_lock.  The same dup key on both sides pairs them.
        self._s_token_comm = yield from self.s_comm.dup(key=-1)
        self._s_wins = []
        for i in range(self._n_windows()):
            win = yield from win_create(
                self.s_comm, self.config.total_bytes,
                key=self.win_pair_key(i),
            )
            yield from win.lock(1, assertion=MODE_NOCHECK)
            self._s_wins.append(win)

    def s_start(self):
        # Wait for the receiver's exposure token.
        yield from self._s_token_comm.recv(source=1, tag=TOKEN_TAG, nbytes=0)

    #: Whether each thread flushes its own window after its last put
    #: (RMA many) or the master flushes once in the wait phase (single).
    thread_flush = False

    def s_ready(self, thread_id: int, partition: int):
        cfg = self.config
        win = self._window_of(thread_id)
        data = None
        if self.send_buffer is not None:
            data = self.send_buffer[
                partition * cfg.part_bytes : (partition + 1) * cfg.part_bytes
            ]
        yield from win.put(
            1, partition * cfg.part_bytes, cfg.part_bytes, data
        )
        if self.thread_flush and partition == cfg.partitions_of(thread_id)[-1]:
            # With one window per thread, each thread flushes its own
            # window as soon as its puts are issued — concurrent flushes
            # are what let RMA many win once every window has its own
            # VCI (Fig. 6).
            yield from win.flush(1)

    def s_wait(self):
        if not self.thread_flush:
            for win in self._s_wins:
                yield from win.flush(1)
        yield from self._s_token_comm.send(dest=1, tag=TOKEN_TAG, nbytes=0)

    def s_free(self):
        for win in self._s_wins:
            yield from win.unlock(1, assertion=MODE_NOCHECK)

    # -- receiver ----------------------------------------------------------------
    def r_init(self):
        self._r_token_comm = yield from self.r_comm.dup(key=-1)
        self._r_wins = []
        for i in range(self._n_windows()):
            win = yield from win_create(
                self.r_comm, self.config.total_bytes, self.recv_buffer,
                key=self.win_pair_key(i),
            )
            self._r_wins.append(win)

    def r_start(self):
        # Expose: tell the sender the buffer is ready this iteration.
        yield from self._r_token_comm.send(dest=0, tag=TOKEN_TAG, nbytes=0)

    def r_wait(self):
        yield from self._r_token_comm.recv(source=0, tag=TOKEN_TAG, nbytes=0)


class RmaSinglePassive(_RmaPassiveBase):
    name = "rma_single_passive"
    label = "RMA single - passive"

    def _n_windows(self) -> int:
        return 1

    def _window_of(self, thread_id: int):
        return self._s_wins[0]


class RmaManyPassive(_RmaPassiveBase):
    name = "rma_many_passive"
    label = "RMA many - passive"
    thread_flush = True

    def _n_windows(self) -> int:
        return self.config.n_threads

    def _window_of(self, thread_id: int):
        return self._s_wins[thread_id]
