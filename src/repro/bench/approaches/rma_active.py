"""RMA active-target (PSCW) approaches (§2.3.3).

The send–receive pattern is naturally active-target: the receiver
controls exposure with ``MPI_Post``/``MPI_Wait`` and the origin opens
and closes access epochs with ``MPI_Start``/``MPI_Complete`` (Tables
1 and 2).  The explicit epoch control replaces the passive variants'
0-byte token messages.

``RMA single - active`` uses one window (plus a ``Comm_dup`` per Table
1); ``RMA many - active`` posts/completes one epoch per thread-window
per iteration.
"""

from __future__ import annotations

from ...mpi.rma import win_create
from .base import Approach

__all__ = ["RmaSingleActive", "RmaManyActive"]


class _RmaActiveBase(Approach):
    def _n_windows(self) -> int:
        raise NotImplementedError

    def _window_of(self, thread_id: int):
        raise NotImplementedError

    # -- sender ----------------------------------------------------------------
    def s_init(self):
        if self._n_windows() == 1:
            # Table 1 lists MPI_Comm_dup for the single-window variant.
            yield from self.s_comm.dup(key=-1)
        self._s_wins = []
        for i in range(self._n_windows()):
            win = yield from win_create(
                self.s_comm, self.config.total_bytes,
                key=self.win_pair_key(i),
            )
            self._s_wins.append(win)

    def s_start(self):
        # Open the access epochs; blocks on the targets' post tokens.
        for win in self._s_wins:
            yield from win.start([1])

    def s_ready(self, thread_id: int, partition: int):
        cfg = self.config
        win = self._window_of(thread_id)
        data = None
        if self.send_buffer is not None:
            data = self.send_buffer[
                partition * cfg.part_bytes : (partition + 1) * cfg.part_bytes
            ]
        yield from win.put(
            1, partition * cfg.part_bytes, cfg.part_bytes, data
        )

    def s_wait(self):
        for win in self._s_wins:
            yield from win.complete()

    # -- receiver ----------------------------------------------------------------
    def r_init(self):
        if self._n_windows() == 1:
            yield from self.r_comm.dup(key=-1)
        self._r_wins = []
        for i in range(self._n_windows()):
            win = yield from win_create(
                self.r_comm, self.config.total_bytes, self.recv_buffer,
                key=self.win_pair_key(i),
            )
            self._r_wins.append(win)

    def r_start(self):
        for win in self._r_wins:
            yield from win.post([0])

    def r_wait(self):
        for win in self._r_wins:
            yield from win.wait()


class RmaSingleActive(_RmaActiveBase):
    name = "rma_single_active"
    label = "RMA single - active"

    def _n_windows(self) -> int:
        return 1

    def _window_of(self, thread_id: int):
        return self._s_wins[0]


class RmaManyActive(_RmaActiveBase):
    name = "rma_many_active"
    label = "RMA many - active"

    def _n_windows(self) -> int:
        return self.config.n_threads

    def _window_of(self, thread_id: int):
        return self._s_wins[thread_id]
