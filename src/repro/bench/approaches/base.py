"""The approach interface: the Fig. 3 benchmark template's hook points.

Every user-level strategy for the pipelined communication pattern
implements the same five phases on each side (Tables 1 and 2 of the
paper):

========  ============================  =============================
phase     sender                        receiver
========  ============================  =============================
init      persistent setup (untimed)    persistent setup (untimed)
start     master, right after the       master, right after the
          inter-rank barrier            inter-rank barrier
ready     per partition, calling        per partition, optional
          thread's timeline             arrival probe
wait      master, after the pre-wait    master; returning marks the
          thread barrier                time-to-solution endpoint
free      teardown                      teardown
========  ============================  =============================

All hooks are generators (they take simulated time in the caller's
timeline).  ``*_thread_init`` hooks run once per thread before the
iteration loop for approaches needing per-thread state (communicator
duplicates, windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...mpi import Comm, MPIWorld

__all__ = ["ApproachConfig", "Approach"]

#: Tag used by every approach for its payload traffic.
BENCH_TAG = 17


@dataclass
class ApproachConfig:
    """Geometry of one benchmark configuration."""

    total_bytes: int
    n_threads: int = 1
    theta: int = 1

    def __post_init__(self) -> None:
        if self.total_bytes < self.n_parts:
            raise ValueError(
                f"total_bytes={self.total_bytes} smaller than the partition "
                f"count {self.n_parts}"
            )
        if self.total_bytes % self.n_parts != 0:
            raise ValueError(
                f"total_bytes={self.total_bytes} not divisible by "
                f"{self.n_parts} partitions"
            )

    @property
    def n_parts(self) -> int:
        """Total partitions N_part = N·θ."""
        return self.n_threads * self.theta

    @property
    def part_bytes(self) -> int:
        """Bytes per partition S_part."""
        return self.total_bytes // self.n_parts

    def partitions_of(self, thread_id: int) -> range:
        """Global partition indices owned by ``thread_id`` (contiguous,
        processed in order — §4.2.2)."""
        return range(thread_id * self.theta, (thread_id + 1) * self.theta)


class Approach:
    """Base class: no-op hooks; subclasses override what they use.

    An approach instance drives one sender→receiver *link*.  By default
    that is the paper's two-rank benchmark (world ranks 0 → 1 over
    ``MPI_COMM_WORLD``), but the :mod:`repro.apps` patterns reuse the
    same approaches over arbitrary rank pairs by passing per-link pair
    communicators whose group is ordered ``(sender, receiver)`` — comm
    rank 0 is always the sender and comm rank 1 the receiver, which is
    what the concrete subclasses' peer arguments rely on.  ``tag`` keys
    this link's payload traffic and ``win_key`` namespaces its RMA
    windows, so many links can coexist in one world.
    """

    #: Registry key and display name (paper's legend label).
    name = "abstract"
    label = "abstract"
    #: True when the approach needs the legacy AM partitioned path;
    #: the harness builds the world with ``part_force_am`` accordingly.
    requires_am = False

    def __init__(self, world: MPIWorld, config: ApproachConfig,
                 sender_rank: int = 0, receiver_rank: int = 1,
                 s_comm: Optional[Comm] = None,
                 r_comm: Optional[Comm] = None,
                 tag: int = BENCH_TAG,
                 win_key: Optional[str] = None):
        self.world = world
        self.config = config
        self.env = world.env
        self.sender_rank = sender_rank
        self.receiver_rank = receiver_rank
        self.s_comm: Comm = (
            s_comm if s_comm is not None else world.comm_world(sender_rank)
        )
        self.r_comm: Comm = (
            r_comm if r_comm is not None else world.comm_world(receiver_rank)
        )
        self.tag = tag
        self.win_key = win_key
        self.send_buffer: Optional[np.ndarray] = None
        self.recv_buffer: Optional[np.ndarray] = None
        if world.cvars.verify_payloads:
            rng = world.rng.stream("bench-payload")
            self.send_buffer = rng.integers(
                0, 255, size=config.total_bytes, dtype=np.uint8
            )
            self.recv_buffer = np.zeros(config.total_bytes, dtype=np.uint8)

    # -- sender hooks ----------------------------------------------------------
    def s_init(self):
        """Generator: sender-side persistent setup (untimed region)."""
        return
        yield  # pragma: no cover

    def s_thread_init(self, thread_id: int):
        """Generator: per-thread sender setup (untimed region)."""
        return
        yield  # pragma: no cover

    def s_start(self):
        """Generator: master-thread start operation."""
        return
        yield  # pragma: no cover

    def s_ready(self, thread_id: int, partition: int):
        """Generator: partition ``partition`` is ready on ``thread_id``."""
        return
        yield  # pragma: no cover

    def s_wait(self):
        """Generator: master-thread completion of the send side."""
        return
        yield  # pragma: no cover

    def s_free(self):
        """Generator: sender teardown."""
        return
        yield  # pragma: no cover

    # -- receiver hooks ----------------------------------------------------------
    def r_init(self):
        """Generator: receiver-side persistent setup (untimed region)."""
        return
        yield  # pragma: no cover

    def r_thread_init(self, thread_id: int):
        """Generator: per-thread receiver setup (untimed region)."""
        return
        yield  # pragma: no cover

    def r_start(self):
        """Generator: master-thread receive start."""
        return
        yield  # pragma: no cover

    def r_probe(self, thread_id: int, partition: int):
        """Generator: optional nonblocking arrival probe."""
        return
        yield  # pragma: no cover

    def r_wait(self):
        """Generator: master-thread receive completion (timing endpoint)."""
        return
        yield  # pragma: no cover

    def r_free(self):
        """Generator: receiver teardown."""
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def win_pair_key(self, index: int) -> Optional[str]:
        """Pairing key for RMA window ``index`` of this link (both sides
        must derive the same key); None selects legacy seq pairing."""
        if self.win_key is None:
            return None
        return f"{self.win_key}:w{index}"

    def verify(self) -> bool:
        """Payload integrity check (verify mode only)."""
        if self.send_buffer is None or self.recv_buffer is None:
            return True
        return bool((self.send_buffer == self.recv_buffer).all())

    def __repr__(self) -> str:  # pragma: no cover - debug repr
        c = self.config
        return (
            f"<{type(self).__name__} {c.total_bytes}B N={c.n_threads} "
            f"theta={c.theta}>"
        )
