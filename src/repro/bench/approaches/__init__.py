"""The eight user-level pipelined-communication strategies (§2.3)."""

from typing import Dict, Type

from .base import Approach, ApproachConfig, BENCH_TAG
from .pt2pt_many import Pt2PtMany
from .pt2pt_part import Pt2PtPart, Pt2PtPartOld
from .pt2pt_single import Pt2PtSingle
from .rma_active import RmaManyActive, RmaSingleActive
from .rma_passive import RmaManyPassive, RmaSinglePassive

#: Registry: approach key -> class, in the paper's legend order.
APPROACHES: Dict[str, Type[Approach]] = {
    cls.name: cls
    for cls in (
        Pt2PtSingle,
        Pt2PtMany,
        Pt2PtPart,
        Pt2PtPartOld,
        RmaSinglePassive,
        RmaManyPassive,
        RmaSingleActive,
        RmaManyActive,
    )
}

__all__ = [
    "Approach",
    "ApproachConfig",
    "BENCH_TAG",
    "APPROACHES",
    "Pt2PtSingle",
    "Pt2PtMany",
    "Pt2PtPart",
    "Pt2PtPartOld",
    "RmaSinglePassive",
    "RmaManyPassive",
    "RmaSingleActive",
    "RmaManyActive",
]
