"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation switches one mechanism off (or sweeps it) and reports the
headline factor it is responsible for:

* VCI-lock contention model → the Fig. 5 congestion factor;
* shared-counter atomics → the Fig. 6/7 partitioned residual;
* message aggregation bound → the Fig. 7 family;
* first-iteration CTS → warm-up cost (the paper's §5 future work);
* thread-based VCI mapping (MPIX_Stream stand-in) vs round-robin at
  θ > 1 — the paper's "likely to break" prediction, quantified.
"""

import pytest
from conftest import BENCH_ITERS

from repro.bench import BenchSpec, run_benchmark
from repro.mpi import Cvars, VCI_METHOD_TAG_RR, VCI_METHOD_THREAD
from repro.net import MELUXINA


def _mean_us(**kw):
    kw.setdefault("iterations", BENCH_ITERS)
    return run_benchmark(BenchSpec(**kw)).mean_us


class TestContentionAblation:
    """Without the contention multiplier, Fig. 5's x30 collapses."""

    def test_contention_model_drives_congestion(self, benchmark):
        params_off = MELUXINA.with_updates(
            vci_contention_coeff=0.0, vci_contention_quad=0.0
        )

        def run():
            with_model = _mean_us(
                approach="pt2pt_many", total_bytes=1024, n_threads=32
            )
            without = _mean_us(
                approach="pt2pt_many", total_bytes=1024, n_threads=32,
                params=params_off,
            )
            return with_model, without

        with_model, without = benchmark(run)
        assert with_model > 4 * without

    def test_single_thread_unaffected_by_contention_model(self, benchmark):
        params_off = MELUXINA.with_updates(
            vci_contention_coeff=0.0, vci_contention_quad=0.0
        )

        def run():
            return (
                _mean_us(approach="pt2pt_single", total_bytes=1024),
                _mean_us(approach="pt2pt_single", total_bytes=1024,
                         params=params_off),
            )

        a, b = benchmark(run)
        assert a == pytest.approx(b, rel=1e-6)


class TestAtomicsAblation:
    """The shared-counter atomics are the Fig. 6 partitioned residual."""

    def test_free_atomics_remove_partitioned_residual(self, benchmark):
        cv = Cvars(num_vcis=32, vci_method=VCI_METHOD_TAG_RR)
        params_off = MELUXINA.with_updates(
            atomic_overhead=0.0,
            atomic_bounce_coeff=0.0,
            pready_atomic_bounce=0.0,
        )

        def run():
            with_atomics = _mean_us(
                approach="pt2pt_part", total_bytes=1024, n_threads=32,
                cvars=cv,
            )
            without = _mean_us(
                approach="pt2pt_part", total_bytes=1024, n_threads=32,
                cvars=cv, params=params_off,
            )
            single = _mean_us(
                approach="pt2pt_single", total_bytes=1024, n_threads=32,
                cvars=cv,
            )
            return with_atomics, without, single

        with_atomics, without, single = benchmark(run)
        # The residual shrinks markedly once the counters are free.
        assert (without / single) < 0.6 * (with_atomics / single)


class TestAggregationSweep:
    """Message count vs aggregation bound (the Fig. 7 mechanism)."""

    @pytest.mark.parametrize("aggr", [0, 512, 4096, 1 << 20])
    def test_aggregation_bound(self, benchmark, aggr):
        time_us = benchmark.pedantic(
            _mean_us,
            kwargs=dict(
                approach="pt2pt_part",
                total_bytes=2048,
                n_threads=4,
                theta=32,
                cvars=Cvars(part_aggr_size=aggr),
            ),
            rounds=1,
            iterations=1,
        )
        baseline = _mean_us(
            approach="pt2pt_part", total_bytes=2048, n_threads=4, theta=32
        )
        if aggr == 0:
            assert time_us == pytest.approx(baseline, rel=1e-6)
        else:
            assert time_us < baseline


class TestFirstIterationCts:
    """§5 future work: dropping the first-iteration handshake."""

    def test_skip_cts_cuts_first_iteration(self, benchmark):
        def first_iter_time(skip):
            spec = BenchSpec(
                approach="pt2pt_part",
                total_bytes=4096,
                n_threads=4,
                iterations=1,
                warmup=0,  # keep the first (normally discarded) iteration
                cvars=Cvars(part_skip_first_cts=skip),
            )
            return run_benchmark(spec).times[0]

        t_with, t_skip = benchmark(
            lambda: (first_iter_time(False), first_iter_time(True))
        )
        assert t_skip < t_with


class TestThreadVciMapping:
    """θ > 1 breaks the round-robin thread assumption (§3.2.2): the
    MPIX_Stream-style thread mapping recovers the lost locality."""

    def test_thread_mapping_beats_round_robin_at_theta_gt_1(self, benchmark):
        kw = dict(
            approach="pt2pt_part",
            total_bytes=16384,
            n_threads=8,
            theta=4,
        )

        def run():
            rr = _mean_us(
                cvars=Cvars(num_vcis=8, vci_method=VCI_METHOD_TAG_RR), **kw
            )
            thread = _mean_us(
                cvars=Cvars(num_vcis=8, vci_method=VCI_METHOD_THREAD), **kw
            )
            return rr, thread

        rr, thread = benchmark(run)
        # Round-robin spreads one thread's partitions over many VCIs,
        # re-introducing sharing; the explicit mapping avoids it.
        assert thread <= rr * 1.05
