"""Shared fixtures for the figure-regeneration benchmarks.

Each ``test_figN`` module benchmarks the regeneration of one of the
paper's figures and prints the reproduced table plus the paper-vs-
measured headline factors (captured with ``pytest -s`` or in the
benchmark summary).

Benchmarks run the drivers in *quick* mode (sparse size grid, few
iterations): the deterministic simulator produces identical means at any
iteration count, so quick mode changes resolution, not conclusions.
Full-resolution runs: ``python -m repro.figures`` entry points in
``examples/regenerate_figures.py``.
"""

import pytest


@pytest.fixture(scope="session")
def report_sink():
    """Collects figure reports; prints them at the end of the session."""
    reports = []
    yield reports
    if reports:
        print("\n" + "\n\n".join(reports))


#: Iterations per benchmark point (deterministic: mean is exact).
BENCH_ITERS = 5
