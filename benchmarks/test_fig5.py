"""Figure 5 regeneration: thread congestion, 32 threads on one VCI.

Paper headline: partitioned/many pay ~x29.76 over the single message at
the smallest size; RMA many-passive shifted above single-passive.
"""

from conftest import BENCH_ITERS

from repro.figures import fig5_congestion


def test_fig5_regeneration(benchmark, report_sink):
    data = benchmark.pedantic(
        fig5_congestion.run,
        kwargs=dict(iterations=BENCH_ITERS, quick=True),
        rounds=1,
        iterations=1,
    )
    h = data.headline
    assert 15 < h["part_penalty_small"] < 45  # [29.76]
    assert 15 < h["many_penalty_small"] < 45  # [~part]
    assert h["rma_many_over_single_win"] > 1.0  # [shifted up]
    assert h["part_penalty_large"] < 1.3  # [converged]
    report_sink.append(fig5_congestion.report(data))
