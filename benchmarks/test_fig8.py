"""Figure 8 regeneration: the early-bird effect for large messages.

Paper headline: gain ~x2.5417 at large sizes (theory 2.67), independent
of the approach; pipelining loses below the ~100 kB crossover.
"""

from conftest import BENCH_ITERS

from repro.figures import fig8_earlybird


def test_fig8_regeneration(benchmark, report_sink):
    data = benchmark.pedantic(
        fig8_earlybird.run,
        kwargs=dict(iterations=BENCH_ITERS, quick=True),
        rounds=1,
        iterations=1,
    )
    h = data.headline
    assert 2.3 < h["gain_part"] < 2.67  # [2.5417]
    assert abs(h["gain_many"] - h["gain_part"]) < 0.1 * h["gain_part"]
    assert abs(h["gain_rma"] - h["gain_part"]) < 0.1 * h["gain_part"]
    assert abs(h["gain_theory"] - 8 / 3) < 1e-6  # [2.67]
    report_sink.append(fig8_earlybird.report(data))
