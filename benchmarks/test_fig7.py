"""Figure 7 regeneration: message aggregation, 4 threads x 32 partitions.

Paper headline: aggregation collapses the small-message overhead from
~x10 (the per-message cost, matching Pt2Pt many) to a x3.13 floor of
atomic updates; the benefit ends at N_part x aggr_size.
"""

from conftest import BENCH_ITERS

from repro.figures import fig7_aggregation


def test_fig7_regeneration(benchmark, report_sink):
    data = benchmark.pedantic(
        fig7_aggregation.run,
        kwargs=dict(iterations=BENCH_ITERS, quick=True),
        rounds=1,
        iterations=1,
    )
    h = data.headline
    assert h["noaggr_penalty"] > 8.0  # [~10]
    assert 2.0 < h["aggr512_penalty"] < 5.0  # [3.13]
    assert abs(h["noaggr_penalty"] - h["many_penalty"]) < 0.3 * h["many_penalty"]
    report_sink.append(fig7_aggregation.report(data))
