"""Tables 1 and 2: regeneration + conformance of the implementations."""

from repro.figures.tables import table1, table2


def test_table1_sender(benchmark, report_sink):
    text = benchmark(table1)
    assert "MPI_Psend_init" in text
    report_sink.append(text)


def test_table2_receiver(benchmark, report_sink):
    text = benchmark(table2)
    assert "MPI_Parrived" in text
    report_sink.append(text)
