"""Figure 4 regeneration: improved vs existing implementation (§4.1).

Paper headline numbers:
* old AM path ÷3.18 slower than the improved tag-matched path;
* improved path matches ``Pt2Pt single``;
* protocol jumps at 1–2 KiB and 8–16 KiB;
* RMA band above point-to-point at small sizes, converging at large.
"""

from conftest import BENCH_ITERS

from repro.figures import fig4_improvement


def test_fig4_regeneration(benchmark, report_sink):
    data = benchmark.pedantic(
        fig4_improvement.run,
        kwargs=dict(iterations=BENCH_ITERS, quick=True),
        rounds=1,
        iterations=1,
    )
    h = data.headline
    # Shape assertions (paper values in brackets).
    assert 2.0 < h["old_over_new_large"] < 4.5  # [3.18]
    assert 0.8 < h["part_over_single_small"] < 1.4  # [~1]
    assert h["rma_over_pt2pt_small"] > 1.5  # [>2]
    assert 0.95 < h["rma_over_pt2pt_large"] < 1.1  # [~1]
    report_sink.append(fig4_improvement.report(data))
