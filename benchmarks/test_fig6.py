"""Figure 6 regeneration: 32 VCIs relieve the congestion.

Paper headline: many matches single; partitioned keeps a x4.04
residual; the RMA single/many ordering flips.
"""

from conftest import BENCH_ITERS

from repro.figures import fig6_vcis


def test_fig6_regeneration(benchmark, report_sink):
    data = benchmark.pedantic(
        fig6_vcis.run,
        kwargs=dict(iterations=BENCH_ITERS, quick=True),
        rounds=1,
        iterations=1,
    )
    h = data.headline
    assert 2.0 < h["part_penalty_small"] < 7.0  # [4.04]
    assert 0.7 < h["many_penalty_small"] < 1.3  # [~1]
    assert h["rma_many_over_single_win"] < 1.0  # [flips]
    report_sink.append(fig6_vcis.report(data))
